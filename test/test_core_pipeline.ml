(* End-to-end pipeline tests on the paper's running example (§2.3):
   a matmul chain partitioned with BP, BP+MP, BP+MP+Z3. *)

open Partir_tensor
open Partir_hlo
open Partir_core
module Mesh = Partir_mesh.Mesh
module Layout = Partir_spmd.Layout
module Lower = Partir_spmd.Lower
module Census = Partir_spmd.Census
module Spmd_interp = Partir_spmd.Spmd_interp
module Temporal = Partir_temporal.Temporal

let chain () =
  let b = Builder.create "chain" in
  let x = Builder.param b "x" [| 256; 8 |] Dtype.F32 in
  let w1 = Builder.param b "w1" [| 8; 16 |] Dtype.F32 in
  let w2 = Builder.param b "w2" [| 16; 8 |] Dtype.F32 in
  let x1 = Builder.matmul b x w1 in
  let x2 = Builder.matmul b x1 w2 in
  Builder.finish b [ x2 ]

let mesh () = Mesh.create [ ("B", 4); ("M", 2) ]

let random_inputs f seed =
  let st = Random.State.make [| seed |] in
  List.map
    (fun (p : Value.t) ->
      Literal.init p.Value.ty.Value.dtype p.Value.ty.Value.shape (fun _ ->
          Random.State.float st 2. -. 1.))
    f.Func.params

(* Differential oracle: reference = temporal = assembled SPMD. *)
let check_equivalence ?(tol = 1e-4) name (staged : Staged.t) =
  let plain = Staged.to_func staged in
  let inputs = random_inputs plain 42 in
  let reference = Interp.run plain inputs in
  let temporal = Temporal.run staged inputs in
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (name ^ ": temporal matches reference")
        true
        (Literal.max_abs_diff a b < tol))
    reference temporal;
  let prog = Lower.lower staged in
  let spmd = Spmd_interp.run prog inputs in
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (name ^ ": spmd matches reference")
        true
        (Literal.max_abs_diff a b < tol))
    reference spmd

let stage_bp () =
  let f = chain () in
  let staged = Staged.of_func (mesh ()) f in
  let x = Func.find_param f "x" in
  let _ = Staged.tile staged ~value:x ~dim:0 ~axis:"B" in
  let conflicts = Propagate.run staged in
  (staged, conflicts)

let test_bp () =
  let staged, conflicts = stage_bp () in
  Alcotest.(check int) "no conflicts" 0 (List.length conflicts);
  let prog = Lower.lower staged in
  let c = Census.of_program prog in
  Alcotest.(check int) "BP: no all_reduce" 0 c.Census.all_reduce;
  Alcotest.(check int) "BP: no all_gather" 0 c.Census.all_gather;
  (* Device-local input shape 64x8 (Listing 3). *)
  let x_local = List.hd prog.Lower.func.Func.params in
  Alcotest.(check bool)
    "x is 64x8 per device" true
    (Shape.equal x_local.Value.ty.Value.shape [| 64; 8 |]);
  check_equivalence "BP" staged

let stage_bp_mp () =
  let staged, _ = stage_bp () in
  let w1 = List.nth staged.Staged.params 1 in
  let _ = Staged.tile staged ~value:w1 ~dim:1 ~axis:"M" in
  let conflicts = Propagate.run staged in
  (staged, conflicts)

let test_bp_mp () =
  let staged, conflicts = stage_bp_mp () in
  Alcotest.(check int) "no conflicts" 0 (List.length conflicts);
  let prog = Lower.lower staged in
  let c = Census.of_program prog in
  Alcotest.(check int) "BP+MP: one all_reduce (Listing 4)" 1 c.Census.all_reduce;
  Alcotest.(check int) "BP+MP: no all_gather" 0 c.Census.all_gather;
  (* w2 is inferred to arrive sliced on dim 0 along M. *)
  let w2_layout = List.nth prog.Lower.input_layouts 2 in
  Alcotest.(check string)
    "w2 arrival layout" "[{M}, {}]"
    (Layout.to_string w2_layout);
  check_equivalence "BP+MP" staged

let stage_bp_mp_z3 () =
  let staged, _ = stage_bp_mp () in
  let w1 = List.nth staged.Staged.params 1 in
  let w2 = List.nth staged.Staged.params 2 in
  let _ = Staged.tile staged ~value:w1 ~dim:0 ~axis:"B" in
  let _ = Staged.tile staged ~value:w2 ~dim:1 ~axis:"B" in
  let conflicts = Propagate.run staged in
  (staged, conflicts)

let test_bp_mp_z3 () =
  let staged, conflicts = stage_bp_mp_z3 () in
  Alcotest.(check int) "no conflicts" 0 (List.length conflicts);
  let prog = Lower.lower staged in
  let c = Census.of_program prog in
  Alcotest.(check int)
    "BP+MP+Z3: two all_gathers (Listing 5)" 2 c.Census.all_gather;
  Alcotest.(check int) "BP+MP+Z3: one all_reduce" 1 c.Census.all_reduce;
  check_equivalence "BP+MP+Z3" staged

let test_conflict_both_at_once () =
  (* Tiling x on B and w1 on B (dim 1) before propagating creates the
     paper's §5.2.3 conflict. *)
  let f = chain () in
  let staged = Staged.of_func (mesh ()) f in
  let x = Func.find_param f "x" in
  let w1 = Func.find_param f "w1" in
  let _ = Staged.tile staged ~value:x ~dim:0 ~axis:"B" in
  let _ = Staged.tile staged ~value:w1 ~dim:1 ~axis:"B" in
  let conflicts = Propagate.run staged in
  Alcotest.(check bool) "conflict detected" true (List.length conflicts > 0)

let test_atomic_blocks () =
  (* atomic<x, B> then tiling x downstream is blocked on B. *)
  let f = chain () in
  let staged = Staged.of_func (mesh ()) f in
  let x = Func.find_param f "x" in
  let _ = Staged.atomic staged ~value:x ~axis:"B" in
  let conflicts = Propagate.run staged in
  Alcotest.(check int) "no conflicts" 0 (List.length conflicts);
  let prog = Lower.lower staged in
  let c = Census.of_program prog in
  Alcotest.(check int) "atomic alone introduces no collectives" 0
    (c.Census.all_reduce + c.Census.all_gather);
  check_equivalence "atomic" staged

let test_transpose_conflict_and_tag () =
  (* §8: matmul(x, transpose(x)) conflicts; atomic on the transpose resolves
     it with a gather. *)
  let build () =
    let b = Builder.create "diag" in
    let x = Builder.param b "x" [| 16; 16 |] Dtype.F32 in
    let tx = Builder.add_named b "tx" (Op.Transpose { perm = [| 1; 0 |] }) [ x ] in
    let y = Builder.matmul b x tx in
    Builder.finish b [ y ]
  in
  let mesh = Mesh.create [ ("M", 2) ] in
  (* Without atomic: conflict. *)
  let staged = Staged.of_func mesh (build ()) in
  let x = List.hd staged.Staged.params in
  let _ = Staged.tile staged ~value:x ~dim:0 ~axis:"M" in
  let conflicts = Propagate.run staged in
  Alcotest.(check bool) "conflict without tag" true (List.length conflicts > 0);
  (* With atomic on the tagged intermediate: resolved, one gather. *)
  let staged = Staged.of_func mesh (build ()) in
  let tx = Option.get (Staged.find_value staged "tx") in
  let _ = Staged.atomic staged ~value:tx ~axis:"M" in
  let x = List.hd staged.Staged.params in
  let _ = Staged.tile staged ~value:x ~dim:0 ~axis:"M" in
  let conflicts = Propagate.run staged in
  Alcotest.(check int) "no conflicts with tag" 0 (List.length conflicts);
  let prog = Lower.lower staged in
  let c = Census.of_program prog in
  Alcotest.(check int) "one all_gather" 1 c.Census.all_gather;
  check_equivalence "transpose+tag" staged

let test_mesh_error_messages () =
  let mesh = Mesh.create [ ("B", 4); ("M", 2) ] in
  Alcotest.check_raises "axis_size names axis and mesh"
    (Invalid_argument "Mesh.axis_size: no axis \"Z\" in mesh {B:4, M:2}")
    (fun () -> ignore (Mesh.axis_size mesh "Z"));
  Alcotest.check_raises "axis_index names axis and mesh"
    (Invalid_argument "Mesh.axis_index: no axis \"model\" in mesh {B:4, M:2}")
    (fun () -> ignore (Mesh.axis_index mesh "model"))

let () =
  Alcotest.run "core-pipeline"
    [
      ( "mesh",
        [ Alcotest.test_case "unknown-axis errors" `Quick test_mesh_error_messages ]
      );
      ( "matmul-chain",
        [
          Alcotest.test_case "BP" `Quick test_bp;
          Alcotest.test_case "BP+MP" `Quick test_bp_mp;
          Alcotest.test_case "BP+MP+Z3" `Quick test_bp_mp_z3;
          Alcotest.test_case "conflict" `Quick test_conflict_both_at_once;
          Alcotest.test_case "atomic" `Quick test_atomic_blocks;
          Alcotest.test_case "transpose-tag" `Quick test_transpose_conflict_and_tag;
        ] );
    ]
