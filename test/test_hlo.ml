(* Unit tests for the IR layer: shape inference, verification, the
   reference interpreter, builder-level composites, and reverse-mode AD
   checked against finite differences. *)

open Partir_tensor
open Partir_hlo

let ttype s = Value.ttype s Dtype.F32

let infer_tests =
  [
    Alcotest.test_case "matmul shapes" `Quick (fun () ->
        let r = Op.infer Op.Matmul [ ttype [| 4; 8 |]; ttype [| 8; 3 |] ] None in
        Alcotest.(check bool) "4x3" true
          (Shape.equal (List.hd r).Value.shape [| 4; 3 |]);
        Alcotest.check_raises "mismatch"
          (Op.Type_error "matmul: incompatible 4x8 x 7x3") (fun () ->
            ignore (Op.infer Op.Matmul [ ttype [| 4; 8 |]; ttype [| 7; 3 |] ] None)));
    Alcotest.test_case "collective shapes" `Quick (fun () ->
        let ag =
          Op.infer (Op.All_gather { dim_axes = [| [ ("x", 2) ]; [] |] })
            [ ttype [| 4; 3 |] ] None
        in
        Alcotest.(check bool) "gather doubles" true
          (Shape.equal (List.hd ag).Value.shape [| 8; 3 |]);
        let a2a =
          Op.infer
            (Op.All_to_all { src_dim = 0; dst_dim = 1; axes = [ ("x", 2) ] })
            [ ttype [| 4; 6 |] ] None
        in
        Alcotest.(check bool) "a2a moves" true
          (Shape.equal (List.hd a2a).Value.shape [| 8; 3 |]));
    Alcotest.test_case "verifier catches bad types" `Quick (fun () ->
        let v = Value.fresh ~name:"x" (ttype [| 2; 2 |]) in
        let op = Op.make Op.Matmul [ v; v ] () in
        let bad_result =
          { (List.hd op.Op.results) with Value.ty = ttype [| 3; 3 |] }
        in
        let f =
          {
            Func.name = "bad";
            params = [ v ];
            body = [ { op with Op.results = [ bad_result ] } ];
            results = [ bad_result ];
          }
        in
        Alcotest.(check bool) "raises" true
          (try
             Func.verify f;
             false
           with Func.Verification_error _ -> true));
  ]

let builder_tests =
  [
    Alcotest.test_case "softmax rows sum to 1" `Quick (fun () ->
        let b = Builder.create "s" in
        let x = Builder.param b "x" [| 3; 5 |] Dtype.F32 in
        let y = Builder.softmax b x ~dim:1 in
        let f = Builder.finish b [ y ] in
        let input =
          Literal.init Dtype.F32 [| 3; 5 |] (fun i ->
              float_of_int ((i.(0) * 2) - i.(1)))
        in
        let out = List.hd (Interp.run f [ input ]) in
        let sums = Literal.reduce `Sum out [| 1 |] in
        List.iter
          (fun s -> Alcotest.(check (float 1e-5)) "row sum" 1. s)
          (Literal.to_float_list sums));
    Alcotest.test_case "layer_norm normalizes" `Quick (fun () ->
        let b = Builder.create "ln" in
        let x = Builder.param b "x" [| 2; 8 |] Dtype.F32 in
        let scale = Builder.param b "s" [| 8 |] Dtype.F32 in
        let y = Builder.layer_norm b x ~scale ~bias:None ~dim:1 in
        let f = Builder.finish b [ y ] in
        let input =
          Literal.init Dtype.F32 [| 2; 8 |] (fun i ->
              float_of_int ((i.(0) * 3) + (i.(1) * i.(1))))
        in
        let out =
          List.hd (Interp.run f [ input; Literal.ones Dtype.F32 [| 8 |] ])
        in
        let means = Literal.reduce `Sum out [| 1 |] in
        List.iter
          (fun m -> Alcotest.(check (float 1e-4)) "mean ~ 0" 0. (m /. 8.))
          (Literal.to_float_list means));
    Alcotest.test_case "for loop accumulates" `Quick (fun () ->
        (* sum_{i<5} (x + x) via a For with one carry. *)
        let b = Builder.create "loop" in
        let x = Builder.param b "x" [| 2 |] Dtype.F32 in
        let init = Builder.zeros b [| 2 |] in
        let iter = Value.fresh ~name:"i" (Value.ttype Shape.scalar Dtype.I32) in
        let carry = Value.fresh ~name:"acc" (ttype [| 2 |]) in
        let xin = Value.fresh ~name:"xi" (ttype [| 2 |]) in
        let rb = Builder.create "body" in
        let acc' = Builder.add2 rb carry xin in
        let region =
          { Op.params = [ iter; carry; xin ]; body = Builder.ops rb; yields = [ acc' ] }
        in
        let results =
          Builder.add_multi b
            (Op.For { trip_count = 5; n_carries = 1 })
            [ init; x ] ~region ()
        in
        let f = Builder.finish b [ List.hd results ] in
        let out = List.hd (Interp.run f [ Literal.of_list Dtype.F32 [| 2 |] [ 1.; 2. ] ]) in
        Alcotest.(check bool) "5x" true
          (Literal.to_float_list out = [ 5.; 10. ]));
  ]

(* Finite-difference check of reverse-mode AD on a composite function
   exercising matmul, relu, reduce, broadcast, take, layer norm. *)
let ad_tests =
  [
    Alcotest.test_case "gradients match finite differences" `Quick (fun () ->
        let build () =
          let b = Builder.create "g" in
          let w = Builder.param b "w" [| 3; 4 |] Dtype.F32 in
          let x = Builder.param b "x" [| 2; 3 |] Dtype.F32 in
          let h = Builder.relu b (Builder.matmul b x w) in
          let t = Builder.tanh b h in
          let loss = Builder.mean b (Builder.mul b t t) [| 0; 1 |] in
          (b, w, x, loss)
        in
        let b, w, _x, loss = build () in
        let grads = Partir_ad.Ad.gradients b ~loss ~wrt:[ w ] in
        let f = Builder.finish b (loss :: grads) in
        let wv =
          Literal.init Dtype.F32 [| 3; 4 |] (fun i ->
              (0.1 *. float_of_int i.(0)) -. (0.07 *. float_of_int i.(1)) +. 0.05)
        in
        let xv =
          Literal.init Dtype.F32 [| 2; 3 |] (fun i ->
              (0.2 *. float_of_int i.(1)) -. (0.3 *. float_of_int i.(0)) +. 0.1)
        in
        match Interp.run f [ wv; xv ] with
        | [ _; gw ] ->
            let eps = 1e-4 in
            Shape.iter_indices [| 3; 4 |] (fun idx ->
                let idx = Array.copy idx in
                let perturb delta =
                  let w' = Literal.map (fun v -> v) wv in
                  Literal.set w' idx (Literal.get wv idx +. delta);
                  match Interp.run f [ w'; xv ] with
                  | l :: _ -> Literal.get_flat l 0
                  | [] -> assert false
                in
                let fd = (perturb eps -. perturb (-.eps)) /. (2. *. eps) in
                let ad = Literal.get gw idx in
                Alcotest.(check bool)
                  (Printf.sprintf "dw[%d,%d] fd=%g ad=%g" idx.(0) idx.(1) fd ad)
                  true
                  (Float.abs (fd -. ad) < 1e-3))
        | _ -> Alcotest.fail "expected loss and gradient");
    Alcotest.test_case "take/scatter gradient" `Quick (fun () ->
        let b = Builder.create "emb" in
        let table = Builder.param b "t" [| 4; 2 |] Dtype.F32 in
        let idx = Builder.param b "i" [| 3 |] Dtype.I32 in
        let rows = Builder.take b table idx ~axis:0 in
        let loss = Builder.mean b (Builder.mul b rows rows) [| 0; 1 |] in
        let grads = Partir_ad.Ad.gradients b ~loss ~wrt:[ table ] in
        let f = Builder.finish b (loss :: grads) in
        let tv = Literal.init Dtype.F32 [| 4; 2 |] (fun i -> float_of_int (i.(0) + 1)) in
        let iv = Literal.of_list Dtype.I32 [| 3 |] [ 1.; 1.; 2. ] in
        match Interp.run f [ tv; iv ] with
        | [ _; gt ] ->
            (* Row 1 referenced twice, row 2 once, rows 0 and 3 never. *)
            Alcotest.(check (float 1e-6)) "unused row" 0. (Literal.get gt [| 0; 0 |]);
            Alcotest.(check (float 1e-6)) "row1 (2 uses)" (4. /. 3.)
              (Literal.get gt [| 1; 0 |]);
            Alcotest.(check (float 1e-6)) "row2 (1 use)" 1.
              (Literal.get gt [| 2; 0 |])
        | _ -> Alcotest.fail "expected loss and gradient");
  ]

let interp_tests =
  [
    Alcotest.test_case "For captures free outer values" `Quick (fun () ->
        (* The loop body reads an outer value directly (not threaded as an
           operand): the interpreter must bind it into the region env. *)
        let b = Builder.create "cap" in
        let x = Builder.param b "x" [| 2 |] Dtype.F32 in
        let bias = Builder.add2 b x x in
        let init = Builder.zeros b [| 2 |] in
        let iter = Value.fresh ~name:"i" (Value.ttype Shape.scalar Dtype.I32) in
        let carry = Value.fresh ~name:"acc" (ttype [| 2 |]) in
        let rb = Builder.create "body" in
        let acc' = Builder.add2 rb carry bias in
        let region =
          { Op.params = [ iter; carry ]; body = Builder.ops rb; yields = [ acc' ] }
        in
        let results =
          Builder.add_multi b
            (Op.For { trip_count = 3; n_carries = 1 })
            [ init ] ~region ()
        in
        (* The verifier requires closed regions, so assemble the func by
           hand: the interpreter accepts source-level captures. *)
        let f =
          {
            Func.name = "cap";
            params = [ x ];
            body = Builder.ops b;
            results = [ List.hd results ];
          }
        in
        let out =
          List.hd (Interp.run f [ Literal.of_list Dtype.F32 [| 2 |] [ 1.; 2. ] ])
        in
        Alcotest.(check bool)
          "3 * 2x" true
          (Literal.to_float_list out = [ 6.; 12. ]));
    Alcotest.test_case "deep-env loop stays linear" `Quick (fun () ->
        (* Regression: each For trip used to copy the whole enclosing env,
           making a loop inside a large scope O(trips * |scope|). With 1024
           values in scope and 1536 trips this must stay well under a
           second. *)
        let b = Builder.create "deep" in
        let x = Builder.param b "x" [||] Dtype.F32 in
        let v = ref x in
        for _ = 1 to 1024 do
          v := Builder.add2 b !v x
        done;
        let iter = Value.fresh ~name:"i" (Value.ttype Shape.scalar Dtype.I32) in
        let carry = Value.fresh ~name:"acc" (ttype [||]) in
        let inv = Value.fresh ~name:"inv" (ttype [||]) in
        let rb = Builder.create "body" in
        let acc' = Builder.add2 rb carry inv in
        let region =
          {
            Op.params = [ iter; carry; inv ];
            body = Builder.ops rb;
            yields = [ acc' ];
          }
        in
        let results =
          Builder.add_multi b
            (Op.For { trip_count = 1536; n_carries = 1 })
            [ Builder.zeros b [||]; !v ]
            ~region ()
        in
        let f = Builder.finish b [ List.hd results ] in
        let t0 = Unix.gettimeofday () in
        let out = List.hd (Interp.run f [ Literal.scalar Dtype.F32 1. ]) in
        let elapsed = Unix.gettimeofday () -. t0 in
        Alcotest.(check (float 1e-6))
          "sum" (1536. *. 1025.)
          (Literal.get out [||]);
        Alcotest.(check bool)
          (Printf.sprintf "fast enough (%.3fs)" elapsed)
          true (elapsed < 1.0));
  ]

let () =
  Alcotest.run "hlo"
    [
      ("infer", infer_tests);
      ("builder", builder_tests);
      ("ad", ad_tests);
      ("interp", interp_tests);
    ]
