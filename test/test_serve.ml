(* Tests for the partition service: the crash-safe store round-trips
   bit-identically and detects any flipped byte (property-tested over
   Partir_check.Gen modules), fingerprints are canonical across value-id
   counter states, the wire protocol round-trips, cancellable searches
   stop at budget checkpoints with a valid best-so-far, and an external
   transposition table is reused across searches without changing the
   result. *)

open Partir_core
module Gen = Partir_check.Gen
module Mesh = Partir_mesh.Mesh
module Lower = Partir_spmd.Lower
module Hardware = Partir_sim.Hardware
module Auto = Partir_auto.Auto
module Store = Partir_serve.Store
module Cache = Partir_serve.Cache
module Protocol = Partir_serve.Protocol
module Zoo = Partir_serve.Zoo

let tmp_dir () =
  let f = Filename.temp_file "partir-test-store" "" in
  Sys.remove f;
  f

(* Generated-module payloads: what the plan cache actually stores. *)
let payload_of_seed seed =
  let case = Gen.generate ~seed in
  let func, _, _ = Gen.build case in
  Marshal.to_string (Cache.canonical_func func) [ Marshal.No_sharing ]

let test_store_roundtrip () =
  let store, scan = Store.open_ (tmp_dir ()) in
  Alcotest.(check int) "fresh store is empty" 0 scan.Store.entries;
  for seed = 0 to 9 do
    let payload = payload_of_seed seed in
    let key = Printf.sprintf "case-%d" seed in
    Store.put store ~key payload;
    match Store.get store ~key with
    | Store.Hit p ->
        Alcotest.(check bool)
          "round-trip is bit-identical" true (String.equal p payload)
    | Store.Miss | Store.Quarantined -> Alcotest.fail "entry vanished"
  done;
  Alcotest.(check int) "ten entries listed" 10 (List.length (Store.keys store))

(* Every single-byte flip anywhere in the framed entry — magic, length,
   checksum, payload — must be detected; so must any truncation. *)
let test_flip_any_byte () =
  let payload = payload_of_seed 3 in
  let framed = Store.encode payload in
  Alcotest.(check bool)
    "encode/decode round-trips" true
    (Store.decode framed = Some payload);
  for i = 0 to String.length framed - 1 do
    let b = Bytes.of_string framed in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    (match Store.decode (Bytes.to_string b) with
    | None -> ()
    | Some _ -> Alcotest.failf "flipped byte %d went undetected" i);
    ()
  done;
  for cut = 0 to min 64 (String.length framed - 1) do
    match Store.decode (String.sub framed 0 cut) with
    | None -> ()
    | Some _ -> Alcotest.failf "truncation at %d went undetected" cut
  done

let test_quarantine () =
  let dir = tmp_dir () in
  let store, _ = Store.open_ dir in
  Store.put store ~key:"victim" (payload_of_seed 5);
  let path = Filename.concat dir "victim.entry" in
  let ic = open_in_bin path in
  let s = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  Bytes.set s (Bytes.length s / 2)
    (Char.chr (Char.code (Bytes.get s (Bytes.length s / 2)) lxor 0x10));
  let oc = open_out_bin path in
  output_bytes oc s;
  close_out oc;
  (match Store.get store ~key:"victim" with
  | Store.Quarantined -> ()
  | Store.Hit _ -> Alcotest.fail "corrupt entry served"
  | Store.Miss -> Alcotest.fail "corrupt entry silently missing");
  Alcotest.(check bool)
    "quarantine file exists" true
    (Sys.file_exists (path ^ ".quarantine"));
  (match Store.get store ~key:"victim" with
  | Store.Miss -> ()
  | _ -> Alcotest.fail "quarantined entry still visible");
  (* A corrupt entry present at open time is quarantined by the scan. *)
  Store.put store ~key:"victim2" (payload_of_seed 6);
  let path2 = Filename.concat dir "victim2.entry" in
  let oc = open_out_bin path2 in
  output_string oc "garbage";
  close_out oc;
  let _, scan = Store.open_ dir in
  Alcotest.(check int) "scan quarantined it" 1 scan.Store.quarantined

let test_fingerprint_canonical () =
  (* Building the same generated case twice consumes fresh global value
     ids the second time; the canonical digest must not notice. *)
  for seed = 0 to 9 do
    let case = Gen.generate ~seed in
    let f1, _, _ = Gen.build case in
    let f2, _, _ = Gen.build case in
    Alcotest.(check string)
      (Printf.sprintf "seed %d: canonical digest is id-independent" seed)
      (Cache.digest_func f1) (Cache.digest_func f2)
  done;
  let f1, _, _ = Gen.build (Gen.generate ~seed:1) in
  let f3, _, _ = Gen.build (Gen.generate ~seed:2) in
  Alcotest.(check bool)
    "distinct modules digest differently" false
    (String.equal (Cache.digest_func f1) (Cache.digest_func f3));
  let mesh = Mesh.create [ ("batch", 4); ("model", 2) ] in
  let fp b =
    Cache.fingerprint ~func:f1 ~mesh ~schedule:"bp" ~budget:b ~hardware:"tpu_v3"
  in
  Alcotest.(check bool)
    "budget is part of the fingerprint" false
    (String.equal (fp 8) (fp 16))

let test_protocol_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      let req =
        {
          Protocol.model = "tiny2";
          mesh = [ ("batch", 2); ("model", 2) ];
          schedule = "bp,auto";
          budget = 12;
          deadline_ms = Some 250.;
          no_cache = true;
          dump = true;
        }
      in
      Protocol.write_request a req;
      (match Protocol.read_request b with
      | Some req' -> Alcotest.(check bool) "request round-trips" true (req = req')
      | None -> Alcotest.fail "request lost");
      let resp = Protocol.Overloaded { queue = 65; max_queue = 64 } in
      Protocol.write_response b resp;
      (match Protocol.read_response a with
      | Some resp' ->
          Alcotest.(check bool) "response round-trips" true (resp = resp')
      | None -> Alcotest.fail "response lost");
      (* Clean EOF before any byte reads as None, not an error. *)
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match Protocol.read_request b with
      | None -> ()
      | Some _ -> Alcotest.fail "phantom request after EOF")

let mlp_staged () =
  let step = Partir_models.Train.training_step (Partir_models.Mlp.forward Partir_models.Mlp.default) in
  Staged.of_func (Mesh.create [ ("batch", 4); ("model", 2) ]) step.Partir_models.Train.func

let opts ?table ?should_stop () =
  {
    Auto.default_options with
    hardware = Hardware.tpu_v3;
    budget = 24;
    parallelism = 1;
    seed = 7;
    max_positions = 6;
    table;
    should_stop;
  }

let test_should_stop () =
  (* Firing immediately: the search stops at the first checkpoint and
     still applies a valid (baseline) vector. *)
  let st =
    Auto.mcts_search (opts ~should_stop:(fun () -> true) ()) (mlp_staged ())
      ~axes:[ "batch"; "model" ]
  in
  Alcotest.(check bool) "interrupted" true st.Auto.Stats.interrupted;
  Alcotest.(check (float 1e-9))
    "best-so-far is the baseline" st.Auto.Stats.baseline_cost
    st.Auto.Stats.best_cost;
  (* Never firing: stats report an uninterrupted search. *)
  let st' =
    Auto.mcts_search (opts ~should_stop:(fun () -> false) ()) (mlp_staged ())
      ~axes:[ "batch"; "model" ]
  in
  Alcotest.(check bool) "not interrupted" false st'.Auto.Stats.interrupted;
  let stg =
    Auto.greedy_search (opts ~should_stop:(fun () -> true) ()) (mlp_staged ())
      ~axes:[ "batch"; "model" ]
  in
  Alcotest.(check bool) "greedy interrupted" true stg.Auto.Stats.interrupted

let test_external_table () =
  (* A shared transposition table turns the second search into pure cache
     hits without changing the outcome. *)
  let table = Hashtbl.create 64 in
  let cold =
    Auto.mcts_search (opts ~table ()) (mlp_staged ()) ~axes:[ "batch"; "model" ]
  in
  let entries = Hashtbl.length table in
  Alcotest.(check bool) "search populated the table" true (entries > 0);
  let warm =
    Auto.mcts_search (opts ~table ()) (mlp_staged ()) ~axes:[ "batch"; "model" ]
  in
  Alcotest.(check (float 1e-9))
    "same best cost" cold.Auto.Stats.best_cost warm.Auto.Stats.best_cost;
  Alcotest.(check int)
    "warm search evaluates nothing" 0 warm.Auto.Stats.evaluations;
  (* Round-trip the table through the store, as the daemon does. *)
  let store, _ = Store.open_ (tmp_dir ()) in
  Cache.save_table store ~key:"tt-test" table;
  match Cache.load_table store ~key:"tt-test" with
  | None -> Alcotest.fail "table did not round-trip"
  | Some t2 ->
      Alcotest.(check int) "same size" entries (Hashtbl.length t2);
      Hashtbl.iter
        (fun k v ->
          match Hashtbl.find_opt t2 k with
          | Some v' when v = v' -> ()
          | _ -> Alcotest.failf "table entry %S changed" k)
        table

let test_zoo_tiny () =
  let p2 = Zoo.prepare "tiny2" and p3 = Zoo.prepare "tiny3" in
  Alcotest.(check bool)
    "tiny2 and tiny3 are structurally distinct" false
    (String.equal
       (Cache.digest_func p2.Zoo.func)
       (Cache.digest_func p3.Zoo.func));
  (match Zoo.prepare "tiny0" with
  | _ -> Alcotest.fail "tiny0 accepted"
  | exception Invalid_argument _ -> ());
  match Zoo.prepare "tinyx" with
  | _ -> Alcotest.fail "tinyx accepted"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "serve"
    [
      ( "store",
        [
          Alcotest.test_case "round-trip is bit-identical" `Quick
            test_store_roundtrip;
          Alcotest.test_case "any flipped byte or truncation is detected"
            `Quick test_flip_any_byte;
          Alcotest.test_case "corrupt entries are quarantined, never served"
            `Quick test_quarantine;
        ] );
      ( "cache",
        [
          Alcotest.test_case "fingerprints are canonical across id counters"
            `Quick test_fingerprint_canonical;
        ] );
      ( "protocol",
        [ Alcotest.test_case "frames round-trip" `Quick test_protocol_roundtrip ] );
      ( "search",
        [
          Alcotest.test_case "should_stop interrupts at budget checkpoints"
            `Quick test_should_stop;
          Alcotest.test_case "external transposition table is reused" `Quick
            test_external_table;
        ] );
      ( "zoo",
        [ Alcotest.test_case "tiny<k> model family" `Quick test_zoo_tiny ] );
    ]
