(* Parity tests for the optimized kernel engine: every optimized kernel in
   Literal must agree with its Naive reference twin on randomized inputs,
   including degenerate shapes (rank 0, size-1 dims, empty tensors) and
   non-contiguous permutations, and must produce bit-identical results
   regardless of the configured domain count. *)

open Partir_tensor
module Parallel = Partir.Parallel
module Gen = Partir_check.Gen
module Interp = Partir_hlo.Interp

let st = Random.State.make [| 0x5eed; 42 |]

let rand_lit ?(dtype = Dtype.F32) shape =
  Literal.init dtype shape (fun _ ->
      match dtype with
      | Dtype.I32 | Dtype.I64 | Dtype.Bool ->
          float_of_int (Random.State.int st 17 - 8)
      | _ -> Random.State.float st 4. -. 2.)

let rand_pos shape =
  Literal.init Dtype.F32 shape (fun _ -> Random.State.float st 4. +. 0.5)

let domain_counts = [ 1; 2; 4 ]

(* Run [f] once with the naive kernels and once per domain count with the
   optimized engine. The optimized results must match the reference within
   [tol] (0. means bit-identical) and must be bit-identical to each other
   across domain counts. *)
let parity ?(tol = 0.) name (f : unit -> Literal.t) =
  let reference =
    Literal.set_naive true;
    Fun.protect ~finally:(fun () -> Literal.set_naive false) f
  in
  let outs =
    List.map
      (fun d ->
        Parallel.set_num_domains d;
        Fun.protect ~finally:Parallel.clear_num_domains f)
      domain_counts
  in
  (* Total-order compare so that equal infinities (reduce neutrals) and
     NaNs in the same slots count as identical. *)
  let identical (a : Literal.t) (b : Literal.t) =
    Shape.equal a.Literal.shape b.Literal.shape
    && Stdlib.compare a.Literal.data b.Literal.data = 0
  in
  List.iter2
    (fun d o ->
      let ok =
        if tol = 0. then identical reference o
        else Literal.approx_equal ~tol reference o
      in
      if not ok then
        Alcotest.failf "%s: domains=%d diff=%g (tol=%g)" name d
          (Literal.max_abs_diff reference o)
          tol)
    domain_counts outs;
  match outs with
  | first :: rest ->
      List.iter2
        (fun d o ->
          if not (identical first o) then
            Alcotest.failf "%s: result depends on domain count (%d)" name d)
        (List.tl domain_counts) rest
  | [] -> ()

(* Shape pools shared by the elementwise cases: degenerate and "normal". *)
let ew_shapes =
  [ [||]; [| 0 |]; [| 1 |]; [| 1; 1; 1 |]; [| 5; 7 |]; [| 3; 0; 4 |]; [| 257 |] ]

let test_elementwise () =
  List.iter
    (fun shape ->
      let a = rand_lit shape and b = rand_pos shape in
      let tag = Shape.to_string shape in
      parity ("map exp " ^ tag) (fun () -> Literal.map Stdlib.exp a);
      parity ("map2 pow " ^ tag) (fun () -> Literal.map2 Float.pow b b);
      parity ("add " ^ tag) (fun () -> Literal.add a b);
      parity ("sub " ^ tag) (fun () -> Literal.sub a b);
      parity ("mul " ^ tag) (fun () -> Literal.mul a b);
      parity ("div " ^ tag) (fun () -> Literal.div a b);
      parity ("neg " ^ tag) (fun () ->
          if Literal.max_abs_diff (Literal.neg a) (Literal.map (fun x -> -.x) a)
             <> 0.
          then Alcotest.fail "neg disagrees with map";
          Literal.neg a);
      parity ("relu " ^ tag) (fun () -> Literal.relu a);
      let pred = rand_lit ~dtype:Dtype.I32 shape in
      parity ("select " ^ tag) (fun () -> Literal.select pred a b);
      List.iter
        (fun c ->
          parity ("compare " ^ tag) (fun () -> Literal.compare_op c a b))
        [ `Eq; `Ne; `Lt; `Le; `Gt; `Ge ])
    ew_shapes

let test_matmul () =
  let cases =
    [
      ([| 1; 1 |], [| 1; 1 |]);
      ([| 3; 4 |], [| 4; 5 |]);
      ([| 7; 13 |], [| 13; 9 |]);
      (* j remainder after the 8-wide unroll, odd k *)
      ([| 2; 3; 5 |], [| 2; 5; 4 |]);
      ([| 0; 4 |], [| 4; 5 |]);
      (* empty m *)
      ([| 3; 0 |], [| 0; 5 |]);
      (* k = 0: result is all zeros in both engines *)
      ([| 2; 1; 33; 17 |], [| 2; 1; 17; 31 |]);
    ]
  in
  List.iter
    (fun (sa, sb) ->
      let a = rand_lit sa and b = rand_lit sb in
      parity
        (Printf.sprintf "matmul %s x %s" (Shape.to_string sa)
           (Shape.to_string sb))
        (fun () -> Literal.matmul a b))
    cases

let test_transpose () =
  let cases =
    [
      ([||], [||]);
      ([| 5 |], [| 0 |]);
      ([| 3; 4; 5 |], [| 2; 1; 0 |]);
      ([| 3; 4; 5 |], [| 1; 2; 0 |]);
      ([| 1; 6; 1 |], [| 2; 0; 1 |]);
      ([| 0; 3 |], [| 1; 0 |]);
      (* big 2-D swap exercises the tiled gather path *)
      ([| 40; 50 |], [| 1; 0 |]);
    ]
  in
  List.iter
    (fun (shape, perm) ->
      let a = rand_lit shape in
      parity
        (Printf.sprintf "transpose %s perm %s" (Shape.to_string shape)
           (Shape.to_string perm))
        (fun () -> Literal.transpose a perm))
    cases

let test_broadcast () =
  let cases =
    [
      ([||], [| 3; 4 |], [||]);
      ([| 1; 4 |], [| 3; 4 |], [| 0; 1 |]);
      ([| 4 |], [| 3; 4 |], [| 1 |]);
      ([| 4 |], [| 4; 3 |], [| 0 |]);
      (* stride-0 inner dim *)
      ([| 2; 1; 3 |], [| 2; 5; 3 |], [| 0; 1; 2 |]);
      ([| 2 |], [| 2; 0 |], [| 0 |]);
    ]
  in
  List.iter
    (fun (src, target, dims) ->
      let a = rand_lit src in
      parity
        (Printf.sprintf "broadcast %s -> %s" (Shape.to_string src)
           (Shape.to_string target))
        (fun () -> Literal.broadcast_in_dim a target dims))
    cases

let test_reduce () =
  let cases =
    [
      ([| 4; 5; 6 |], [| 0 |]);
      ([| 4; 5; 6 |], [| 1 |]);
      ([| 4; 5; 6 |], [| 2 |]);
      ([| 4; 5; 6 |], [| 0; 2 |]);
      ([| 4; 5; 6 |], [| 0; 1; 2 |]);
      ([| 7 |], [| 0 |]);
      ([| 0; 3 |], [| 0 |]);
      (* reduce over an empty dim: neutral element *)
      ([| 1; 1 |], [| 1 |]);
      ([| 64; 65 |], [| 1 |]);
      ([||], [||]);
    ]
  in
  List.iter
    (fun (shape, dims) ->
      let a = rand_lit shape in
      List.iter
        (fun kind ->
          parity
            (Printf.sprintf "reduce %s dims %s" (Shape.to_string shape)
               (Shape.to_string dims))
            (fun () -> Literal.reduce kind a dims))
        [ `Sum; `Max; `Min ])
    cases

let test_structural () =
  (* concat, incl. a zero-sized part *)
  let c1 = rand_lit [| 2; 3 |]
  and c2 = rand_lit [| 2; 0 |]
  and c3 = rand_lit [| 2; 5 |] in
  parity "concat dim1" (fun () -> Literal.concat [ c1; c2; c3 ] 1);
  let r1 = rand_lit [| 2; 4 |] and r2 = rand_lit [| 3; 4 |] in
  parity "concat dim0" (fun () -> Literal.concat [ r1; r2 ] 0);
  parity "concat single" (fun () -> Literal.concat [ c1 ] 0);
  (* slice: interior, full, empty *)
  let s = rand_lit [| 6; 7; 8 |] in
  parity "slice interior" (fun () ->
      Literal.slice s ~starts:[| 1; 2; 3 |] ~limits:[| 5; 6; 7 |]);
  parity "slice full" (fun () ->
      Literal.slice s ~starts:[| 0; 0; 0 |] ~limits:[| 6; 7; 8 |]);
  parity "slice empty" (fun () ->
      Literal.slice s ~starts:[| 2; 2; 2 |] ~limits:[| 2; 6; 7 |]);
  (* dynamic_slice with out-of-range starts (clamped) *)
  parity "dynamic_slice clamped" (fun () ->
      Literal.dynamic_slice s ~starts:[| 5; -1; 100 |] ~sizes:[| 3; 2; 4 |]);
  (* dynamic_update_slice, clamped *)
  let upd = rand_lit [| 3; 2; 4 |] in
  parity "dynamic_update_slice" (fun () ->
      Literal.dynamic_update_slice s upd ~starts:[| 1; 0; 2 |]);
  parity "dynamic_update_slice clamped" (fun () ->
      Literal.dynamic_update_slice s upd ~starts:[| 100; -3; 7 |]);
  (* pad: asymmetric, with negative value, and rank 0 passthrough *)
  let p = rand_lit [| 3; 4 |] in
  parity "pad" (fun () ->
      Literal.pad p ~low:[| 1; 0 |] ~high:[| 2; 3 |] ~value:(-7.5));
  parity "pad none" (fun () ->
      Literal.pad p ~low:[| 0; 0 |] ~high:[| 0; 0 |] ~value:0.);
  let sc = rand_lit [||] in
  parity "pad rank0" (fun () -> Literal.pad sc ~low:[||] ~high:[||] ~value:1.)

let test_gather_scatter () =
  let operand = rand_lit [| 5; 6; 7 |] in
  let idx shape hi =
    Literal.init Dtype.I32 shape (fun _ ->
        float_of_int (Random.State.int st (hi + 4) - 2))
    (* deliberately out of range on both sides: take clamps *)
  in
  let i0 = idx [| 9 |] 5
  and i1 = idx [| 2; 3 |] 6
  and i2 = idx [||] 7
  and i3 = idx [| 0 |] 5 in
  parity "take axis0" (fun () -> Literal.take operand i0 ~axis:0);
  parity "take axis1 rank2 idx" (fun () -> Literal.take operand i1 ~axis:1);
  parity "take axis2 scalar idx" (fun () -> Literal.take operand i2 ~axis:2);
  parity "take empty idx" (fun () -> Literal.take operand i3 ~axis:0);
  (* scatter_add with duplicate indices: accumulation order must match *)
  let base = rand_lit [| 5; 4 |] in
  let indices =
    Literal.of_list Dtype.I32 [| 6 |] [ 2.; 0.; 2.; 4.; 2.; 0. ]
  in
  let updates = rand_lit [| 6; 4 |] in
  parity "scatter_add dup indices" (fun () ->
      Literal.scatter_add base indices updates ~axis:0);
  let base1 = rand_lit [| 3; 5; 2 |] in
  let upd1 = rand_lit [| 3; 4; 2 |] in
  let idx1 = Literal.of_list Dtype.I32 [| 4 |] [ 4.; 1.; 1.; 0. ] in
  parity "scatter_add axis1" (fun () ->
      Literal.scatter_add base1 idx1 upd1 ~axis:1)

let test_conv () =
  let cases =
    (* n, h, w, ic, oc, kh, kw, stride, padding *)
    [
      (1, 5, 5, 1, 1, 3, 3, 1, 1);
      (2, 8, 6, 3, 4, 3, 3, 1, 1);
      (1, 9, 9, 2, 3, 3, 3, 2, 1);
      (2, 7, 7, 2, 2, 1, 1, 1, 0);
      (1, 4, 4, 1, 2, 4, 4, 2, 0);
    ]
  in
  List.iter
    (fun (n, h, w, ic, oc, kh, kw, stride, padding) ->
      let x = rand_lit [| n; h; w; ic |] in
      let k = rand_lit [| kh; kw; ic; oc |] in
      let tag = Printf.sprintf "%dx%dx%dx%d k%dx%d s%d p%d" n h w ic kh kw stride padding in
      parity ("conv2d " ^ tag) (fun () -> Literal.conv2d x k ~stride ~padding);
      let y = Literal.conv2d x k ~stride ~padding in
      let g = rand_lit y.Literal.shape in
      (* the optimized input grad gathers instead of scattering, so the
         accumulation order differs: approximate parity only *)
      parity ~tol:1e-6 ("conv2d_input_grad " ^ tag) (fun () ->
          Literal.conv2d_input_grad g k ~input_shape:[| n; h; w; ic |] ~stride
            ~padding);
      parity ("conv2d_kernel_grad " ^ tag) (fun () ->
          Literal.conv2d_kernel_grad x g ~kernel_shape:[| kh; kw; ic; oc |]
            ~stride ~padding))
    cases

let test_compare_semantics () =
  (* NaN handling: approx_equal treats NaN as equal anywhere; comparisons
     with NaN are false so compare_op yields 0. everywhere for Lt..Ge. *)
  let nan_lit = Literal.of_list Dtype.F32 [| 3 |] [ 1.; Float.nan; 3. ] in
  let other = Literal.of_list Dtype.F32 [| 3 |] [ 1.; 2.; 3. ] in
  Alcotest.(check bool)
    "NaN tolerated" true
    (Literal.approx_equal ~tol:1e-9 nan_lit other);
  Alcotest.(check bool)
    "mismatch detected" false
    (Literal.approx_equal ~tol:1e-9 other
       (Literal.of_list Dtype.F32 [| 3 |] [ 1.; 2.; 4. ]));
  parity "compare with NaN" (fun () -> Literal.compare_op `Lt nan_lit other);
  parity "compare eq NaN" (fun () -> Literal.compare_op `Eq nan_lit nan_lit);
  (* max_abs_diff early exit must still find a late mismatch *)
  let a = Literal.init Dtype.F32 [| 1000 |] (fun i -> float_of_int i.(0)) in
  let b =
    Literal.init Dtype.F32 [| 1000 |] (fun i ->
        if i.(0) = 999 then 0. else float_of_int i.(0))
  in
  Alcotest.(check (float 0.)) "late diff" 999. (Literal.max_abs_diff a b)

(* End-to-end parity: the partcheck generator produces whole HLO programs
   (elementwise, matmul, transpose, reshape, reduce, loops); interpreting
   them with the optimized engine must match the naive engine bit-for-bit
   at every domain count, since none of its ops reassociate. *)
let test_end_to_end_gen () =
  for seed = 0 to 11 do
    let c = Gen.generate ~seed in
    let f, _mesh, _vals = Gen.build c in
    let inputs = Gen.inputs c f in
    let reference =
      Literal.set_naive true;
      Fun.protect
        ~finally:(fun () -> Literal.set_naive false)
        (fun () -> Interp.run f inputs)
    in
    List.iter
      (fun d ->
        Parallel.set_num_domains d;
        let outs =
          Fun.protect ~finally:Parallel.clear_num_domains (fun () ->
              Interp.run f inputs)
        in
        List.iter2
          (fun r o ->
            let diff = Literal.max_abs_diff r o in
            if diff <> 0. then
              Alcotest.failf "gen seed %d domains %d: diff %g" seed d diff)
          reference outs)
      domain_counts
  done

let () =
  Alcotest.run "kernels"
    [
      ( "parity",
        [
          Alcotest.test_case "elementwise" `Quick test_elementwise;
          Alcotest.test_case "matmul" `Quick test_matmul;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "reduce" `Quick test_reduce;
          Alcotest.test_case "structural" `Quick test_structural;
          Alcotest.test_case "gather/scatter" `Quick test_gather_scatter;
          Alcotest.test_case "conv" `Quick test_conv;
          Alcotest.test_case "compare semantics" `Quick test_compare_semantics;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "generated programs" `Quick test_end_to_end_gen ] );
    ]
