(* Tests for compiled execution plans (lib/plan): bit-parity of
   Plan.execute against the reference interpreter and approximate parity
   against the naive kernels on generated programs (For loops, shared
   operands) and a handcrafted op zoo; domain-count invariance at 1/2/4
   domains; rank-0 and empty tensors; and a regression asserting arena
   slot reuse never aliases a live buffer. *)

open Partir_tensor
open Partir_hlo
module Parallel = Partir_parallel
module Plan = Partir_plan.Plan
module Gen = Partir_check.Gen

let bits_equal (a : Literal.t) (b : Literal.t) =
  Shape.equal a.Literal.shape b.Literal.shape
  && Array.length a.Literal.data = Array.length b.Literal.data
  && (let ok = ref true in
      Array.iteri
        (fun i x ->
          if
            Int64.bits_of_float x
            <> Int64.bits_of_float b.Literal.data.(i)
          then ok := false)
        a.Literal.data;
      !ok)

let check_bits label reference got =
  Alcotest.(check int)
    (label ^ ": output count") (List.length reference) (List.length got);
  List.iteri
    (fun i (r, g) ->
      if not (bits_equal r g) then
        Alcotest.failf "%s: output %d differs (max |delta| = %g)" label i
          (Literal.max_abs_diff r g))
    (List.combine reference got)

let check_approx label reference got =
  List.iteri
    (fun i (r, g) ->
      let bound =
        1e-4
        *. (1.
           +. List.fold_left
                (fun acc x -> Float.max acc (Float.abs x))
                0. (Literal.to_float_list r))
      in
      let diff = Literal.max_abs_diff r g in
      if not (diff <= bound) then
        Alcotest.failf "%s: output %d differs by %g (bound %g)" label i diff
          bound)
    (List.combine reference got)

let plan_run func args =
  Array.to_list (Plan.execute (Plan.compile func) (Array.of_list args))

let with_naive f =
  Literal.set_naive true;
  Fun.protect ~finally:(fun () -> Literal.set_naive false) f

(* Generated programs (elementwise chains, matmuls, transposes, reshapes,
   reductions, For loops with invariants, shared operands): the plan must
   be bit-identical to the interpreter and within tolerance of the naive
   kernels (whose summation order differs). *)
let test_generated_parity () =
  for seed = 0 to 39 do
    let c = Gen.generate ~seed in
    let func, _mesh, _pool = Gen.build c in
    let args = Gen.inputs c func in
    let reference = Interp.run func args in
    check_bits (Printf.sprintf "seed %d vs interp" seed) reference
      (plan_run func args);
    check_approx
      (Printf.sprintf "seed %d vs naive" seed)
      (with_naive (fun () -> Interp.run func args))
      reference
  done

(* The same plan value re-executed under 1, 2, and 4 domains must produce
   bit-identical outputs (fixed 64-chunk work splitting). *)
let test_domain_invariance () =
  let c = Gen.generate ~seed:5 in
  let func, _, _ = Gen.build c in
  let args = Array.of_list (Gen.inputs c func) in
  let plan = Plan.compile func in
  let at n =
    Parallel.set_num_domains n;
    Fun.protect
      ~finally:(fun () -> Parallel.clear_num_domains ())
      (fun () -> Array.to_list (Plan.execute plan args))
  in
  let o1 = at 1 in
  check_bits "domains 1 vs 2" o1 (at 2);
  check_bits "domains 1 vs 4" o1 (at 4)

(* Handcrafted zoo covering ops the generator never emits: select,
   compare, concat, static/dynamic slice, dynamic update slice, pad, take,
   scatter_add, broadcast, splat, and the conv2d family. *)
let zoo () =
  let b = Builder.create "zoo" in
  let x = Builder.param b "x" [| 4; 6 |] Dtype.F32 in
  let y = Builder.param b "y" [| 4; 6 |] Dtype.F32 in
  let emb = Builder.param b "emb" [| 8; 6 |] Dtype.F32 in
  let idx = Builder.param b "idx" [| 5 |] Dtype.I32 in
  let img = Builder.param b "img" [| 2; 6; 6; 3 |] Dtype.F32 in
  let ker = Builder.param b "ker" [| 3; 3; 3; 4 |] Dtype.F32 in
  let cmp = Builder.add b (Op.Compare Op.Ge) [ x; y ] in
  let sel = Builder.add b Op.Select [ cmp; x; y ] in
  let cat = Builder.concat b [ sel; x ] 1 in
  let sl =
    Builder.add b
      (Op.Slice { starts = [| 1; 2 |]; limits = [| 4; 11 |] })
      [ cat ]
  in
  let s0 = Builder.scalar b ~dtype:Dtype.I32 1. in
  let s1 = Builder.scalar b ~dtype:Dtype.I32 3. in
  let ds = Builder.add b (Op.Dynamic_slice { sizes = [| 2; 4 |] }) [ sl; s0; s1 ] in
  let dus = Builder.add b Op.Dynamic_update_slice [ sl; ds; s1; s0 ] in
  let pad =
    Builder.add b
      (Op.Pad { low = [| 1; 0 |]; high = [| 0; 2 |]; value = 0.5 })
      [ dus ]
  in
  let tk = Builder.take b emb idx ~axis:0 in
  let sc = Builder.add b (Op.Scatter_add { axis = 0 }) [ emb; idx; tk ] in
  let bc = Builder.broadcast b idx [| 5; 6 |] [| 0 |] in
  let spl = Builder.splat b x 2.5 in
  let cv = Builder.add b (Op.Conv2d { stride = 1; padding = 1 }) [ img; ker ] in
  let cig =
    Builder.add b
      (Op.Conv2d_input_grad
         { input_shape = [| 2; 6; 6; 3 |]; stride = 1; padding = 1 })
      [ cv; ker ]
  in
  let ckg =
    Builder.add b
      (Op.Conv2d_kernel_grad
         { kernel_shape = [| 3; 3; 3; 4 |]; stride = 1; padding = 1 })
      [ img; cv ]
  in
  let mix = Builder.mul b spl (Builder.add2 b x y) in
  Builder.finish b [ pad; sc; bc; cv; cig; ckg; mix; tk ]

let zoo_args () =
  let st = Random.State.make [| 21 |] in
  let f shape = Literal.init Dtype.F32 shape (fun _ -> Random.State.float st 2. -. 1.) in
  [
    f [| 4; 6 |];
    f [| 4; 6 |];
    f [| 8; 6 |];
    Literal.init Dtype.I32 [| 5 |] (fun _ -> float_of_int (Random.State.int st 8));
    f [| 2; 6; 6; 3 |];
    f [| 3; 3; 3; 4 |];
  ]

let test_zoo_parity () =
  let func = zoo () in
  let args = zoo_args () in
  let reference = Interp.run func args in
  check_bits "zoo vs interp" reference (plan_run func args);
  check_approx "zoo vs naive"
    (with_naive (fun () -> Interp.run func args))
    reference

(* Rank-0 (scalar) values and empty tensors flow through compilation and
   execution. *)
let test_rank0_and_empty () =
  let b = Builder.create "edge" in
  let s = Builder.param b "s" [||] Dtype.F32 in
  let e = Builder.param b "e" [| 2; 0 |] Dtype.F32 in
  let s2 = Builder.mul b (Builder.exp b s) s in
  let e2 = Builder.add2 b e e in
  let er = Builder.reshape b e2 [| 0 |] in
  let func = Builder.finish b [ s2; er ] in
  let args = [ Literal.scalar Dtype.F32 0.75; Literal.zeros Dtype.F32 [| 2; 0 |] ] in
  check_bits "rank0/empty" (Interp.run func args) (plan_run func args)

(* Regression: a value that stays live across a run of same-size
   allocations (whose slots are freed and reused) must never be clobbered
   by slot reuse or an in-place claim. *)
let test_no_live_aliasing () =
  let b = Builder.create "alias" in
  let x = Builder.param b "x" [| 8; 8 |] Dtype.F32 in
  let keep = Builder.exp b x in
  (* Churn: each transpose frees its operand's slot for the next. *)
  let t1 = Builder.transpose b x [| 1; 0 |] in
  let t2 = Builder.transpose b t1 [| 1; 0 |] in
  let t3 = Builder.transpose b t2 [| 1; 0 |] in
  let t4 = Builder.transpose b t3 [| 1; 0 |] in
  (* Elementwise chain with in-place candidates of keep's size. *)
  let c1 = Builder.neg b t4 in
  let c2 = Builder.relu b c1 in
  let c3 = Builder.add2 b c2 t4 in
  let out = Builder.add2 b keep c3 in
  let func = Builder.finish b [ out; keep ] in
  let plan = Plan.compile func in
  let stats = Plan.stats plan in
  Alcotest.(check bool) "slots were reused" true (stats.Plan.n_slots < 8);
  Alcotest.(check bool) "arena smaller than naive" true
    (stats.Plan.arena_bytes < stats.Plan.naive_bytes);
  let args =
    [ Literal.init Dtype.F32 [| 8; 8 |] (fun _ -> Random.float 2. -. 1.) ]
  in
  check_bits "live value intact" (Interp.run func args)
    (Array.to_list (Plan.execute plan (Array.of_list args)))

(* Chain fusion is exercised and in-place claims happen on a softmax-like
   elementwise pipeline. *)
let test_fusion_stats () =
  let b = Builder.create "chain" in
  let x = Builder.param b "x" [| 32; 32 |] Dtype.F32 in
  let a = Builder.exp b x in
  let c = Builder.neg b a in
  let d = Builder.relu b c in
  let e = Builder.mul b d d in
  let f = Builder.add2 b e x in
  let func = Builder.finish b [ f ] in
  let plan = Plan.compile func in
  let stats = Plan.stats plan in
  Alcotest.(check bool) "a chain was emitted" true (stats.Plan.n_chains >= 1);
  Alcotest.(check bool) "ops were fused" true (stats.Plan.n_fused >= 4);
  let args =
    [ Literal.init Dtype.F32 [| 32; 32 |] (fun _ -> Random.float 2. -. 1.) ]
  in
  check_bits "fused chain parity" (Interp.run func args)
    (Array.to_list (Plan.execute plan (Array.of_list args)))

(* Plan errors surface as Plan_error, not random exceptions. *)
let test_error_paths () =
  let b = Builder.create "err" in
  let x = Builder.param b "x" [| 2; 2 |] Dtype.F32 in
  let y = Builder.exp b x in
  let func = Builder.finish b [ y ] in
  let plan = Plan.compile func in
  (match Plan.execute plan [| Literal.zeros Dtype.F32 [| 3; 3 |] |] with
  | _ -> Alcotest.fail "shape mismatch accepted"
  | exception Plan.Plan_error _ -> ());
  match Plan.execute plan [||] with
  | _ -> Alcotest.fail "missing arguments accepted"
  | exception Plan.Plan_error _ -> ()

let () =
  Alcotest.run "plans"
    [
      ( "plan",
        [
          Alcotest.test_case "generated-bit-parity" `Quick
            test_generated_parity;
          Alcotest.test_case "domain-invariance" `Quick test_domain_invariance;
          Alcotest.test_case "op-zoo-parity" `Quick test_zoo_parity;
          Alcotest.test_case "rank0-and-empty" `Quick test_rank0_and_empty;
          Alcotest.test_case "no-live-aliasing" `Quick test_no_live_aliasing;
          Alcotest.test_case "fusion-stats" `Quick test_fusion_stats;
          Alcotest.test_case "error-paths" `Quick test_error_paths;
        ] );
    ]
