(* Tests for the static analyzers (Partir_analysis): each planted defect
   must be reported with its exact diagnostic code, and everything the real
   pipeline produces — benchmark models and partcheck-generated cases,
   before and after fusion — must verify with zero diagnostics. *)

open Partir
module Gen = Partir_check.Gen
module Oracle = Partir_check.Oracle

let ty shape dtype = Value.ttype shape dtype
let f32 shape = ty shape Dtype.F32

let codes diags = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) diags

let check_has_code what code diags =
  if not (Diagnostic.has_code code diags) then
    Alcotest.failf "%s: expected %s among [%s]" what code
      (String.concat "; " (codes diags))

let check_clean what diags =
  match Diagnostic.errors diags with
  | [] -> ()
  | errs ->
      Alcotest.failf "%s: expected zero diagnostics, got:\n%s" what
        (Diagnostic.list_to_string errs)

(* {1 Verify: hand-built known-bad HLO} *)

let test_wrong_result_shape () =
  let x = Value.fresh ~name:"x" (f32 [| 4; 4 |]) in
  let op = Op.make Op.Matmul [ x; x ] () in
  (* Tamper: record a [4;8] result for a [4;4] matmul. *)
  let bad = { op with Op.results = [ Value.fresh ~name:"y" (f32 [| 4; 8 |]) ] } in
  let f =
    { Func.name = "bad_shape"; params = [ x ]; body = [ bad ]; results = bad.Op.results }
  in
  let diags = Verify.func f in
  check_has_code "tampered matmul result" "V006" diags;
  (* Func.verify (the exception twin) must also locate the op. *)
  match Func.verify f with
  | () -> Alcotest.fail "Func.verify accepted a tampered result type"
  | exception Func.Verification_error msg ->
      if not (String.length msg > 0 && String.contains msg '#') then
        Alcotest.failf "no op-index context in %S" msg

let test_dtype_mismatch () =
  let x = Value.fresh ~name:"x" (f32 [| 4 |]) in
  let y = Value.fresh ~name:"y" (ty [| 4 |] Dtype.I32) in
  (* Op.infer checks shapes only, so this builds — Verify must flag it. *)
  let op = Op.make (Op.Binary Op.Add) [ x; y ] () in
  let f =
    { Func.name = "bad_dtype"; params = [ x; y ]; body = [ op ]; results = op.Op.results }
  in
  check_has_code "f32+i32 add" "V007" (Verify.func f)

let test_select_pred_dtype () =
  let p = Value.fresh ~name:"p" (f32 [| 4 |]) in
  let x = Value.fresh ~name:"x" (f32 [| 4 |]) in
  let op = Op.make Op.Select [ p; x; x ] () in
  let f =
    { Func.name = "bad_pred"; params = [ p; x ]; body = [ op ]; results = op.Op.results }
  in
  check_has_code "non-bool select predicate" "V007" (Verify.func f)

let test_collective_axis_checks () =
  let x = Value.fresh ~name:"x" (f32 [| 4; 4 |]) in
  let mesh = Mesh.create [ ("a", 2); ("b", 2) ] in
  let mk kind =
    let op = Op.make kind [ x ] () in
    { Func.name = "coll"; params = [ x ]; body = [ op ]; results = op.Op.results }
  in
  check_has_code "unknown axis" "V009"
    (Verify.func ~mesh (mk (Op.All_reduce { axes = [ ("z", 2) ]; reduce = Op.Rsum })));
  check_has_code "wrong axis size" "V010"
    (Verify.func ~mesh (mk (Op.All_reduce { axes = [ ("a", 4) ]; reduce = Op.Rsum })));
  check_has_code "repeated axis" "V011"
    (Verify.func ~mesh
       (mk (Op.All_reduce { axes = [ ("a", 2); ("a", 2) ]; reduce = Op.Rsum })))

(* {1 Verify: staged well-formedness} *)

(* A staged matmul module whose nest we corrupt by hand ([Staged.tile]
   itself refuses to build these). *)
let staged_matmul ~mesh ~m ~k =
  let b = Builder.create "staged" in
  let x = Builder.param b "x" [| m; k |] Dtype.F32 in
  let y = Builder.param b "y" [| k; m |] Dtype.F32 in
  let z = Builder.add b Op.Matmul [ x; y ] in
  let f = Builder.finish b [ z ] in
  Staged.of_func mesh f

let test_axis_tiled_twice () =
  let mesh = Mesh.create [ ("a", 2) ] in
  let t = staged_matmul ~mesh ~m:4 ~k:4 in
  (match t.Staged.body with
  | [ sop ] ->
      sop.Staged.nest <-
        [
          {
            Action.axis = "a";
            operand_dims = [| Some 0; None |];
            result_actions = [| Action.Tile 0 |];
          };
          {
            Action.axis = "a";
            operand_dims = [| Some 1; None |];
            result_actions = [| Action.Tile 1 |];
          };
        ]
  | _ -> Alcotest.fail "unexpected staged body");
  check_has_code "axis on two dims" "S003" (Verify.staged t)

let test_non_divisible_tile () =
  let mesh = Mesh.create [ ("a", 3) ] in
  let t = staged_matmul ~mesh ~m:4 ~k:4 in
  (match t.Staged.body with
  | [ sop ] ->
      sop.Staged.nest <-
        [
          {
            Action.axis = "a";
            operand_dims = [| Some 0; None |];
            result_actions = [| Action.Tile 0 |];
          };
        ]
  | _ -> Alcotest.fail "unexpected staged body");
  let diags = Verify.staged t in
  check_has_code "4 not divisible by 3" "S004" diags;
  (* Staged.validate must agree with the diagnostic pass. *)
  match Staged.validate t with
  | () -> Alcotest.fail "Staged.validate accepted a non-divisible tile"
  | exception Staged.Action_error _ -> ()

let test_unknown_nest_axis () =
  let mesh = Mesh.create [ ("a", 2) ] in
  let t = staged_matmul ~mesh ~m:4 ~k:4 in
  (match t.Staged.body with
  | [ sop ] ->
      sop.Staged.nest <-
        [
          {
            Action.axis = "zz";
            operand_dims = [| Some 0; None |];
            result_actions = [| Action.Tile 0 |];
          };
        ]
  | _ -> Alcotest.fail "unexpected staged body");
  check_has_code "unknown nest axis" "S001" (Verify.staged t)

(* {1 ShardCheck: hand-built lowered programs} *)

let program_of ~mesh ~params ~input_layouts ~body ~results ~output_layouts =
  {
    Lower.mesh;
    func = { Func.name = "p_spmd"; params; body; results };
    source_params = params;
    source_results = results;
    input_layouts;
    output_layouts;
    source_flops = 0.;
  }

let test_operand_layout_mismatch () =
  let mesh = Mesh.create [ ("d", 2) ] in
  let x = Value.fresh ~name:"x" (f32 [| 4; 4 |]) in
  let y = Value.fresh ~name:"y" (f32 [| 4; 4 |]) in
  let op = Op.make (Op.Binary Op.Add) [ x; y ] () in
  let p =
    program_of ~mesh ~params:[ x; y ]
      ~input_layouts:[ [| [ "d" ]; [] |]; [| []; [] |] ]
      ~body:[ op ] ~results:op.Op.results
      ~output_layouts:[ [| []; [] |] ]
  in
  check_has_code "add of differently-sharded operands" "SC001"
    (Shard_check.program p)

let test_all_reduce_without_partial () =
  let mesh = Mesh.create [ ("d", 2) ] in
  let x = Value.fresh ~name:"x" (f32 [| 4; 4 |]) in
  let op = Op.make (Op.All_reduce { axes = [ ("d", 2) ]; reduce = Op.Rsum }) [ x ] () in
  let p =
    program_of ~mesh ~params:[ x ]
      ~input_layouts:[ [| []; [] |] ]
      ~body:[ op ] ~results:op.Op.results
      ~output_layouts:[ [| []; [] |] ]
  in
  check_has_code "all_reduce of a fully-reduced value" "SC006"
    (Shard_check.program p)

let test_output_layout_mismatch () =
  let mesh = Mesh.create [ ("d", 2) ] in
  let x = Value.fresh ~name:"x" (f32 [| 4; 4 |]) in
  let p =
    program_of ~mesh ~params:[ x ]
      ~input_layouts:[ [| [ "d" ]; [] |] ]
      ~body:[] ~results:[ x ]
      ~output_layouts:[ [| []; [] |] ]
  in
  check_has_code "sharded result declared replicated" "SC007"
    (Shard_check.program p)

let test_gather_not_suffix () =
  let mesh = Mesh.create [ ("a", 2); ("b", 2) ] in
  let x = Value.fresh ~name:"x" (f32 [| 2; 4 |]) in
  (* x is sliced [a then b] on dim 0; gathering only [a] peels the wrong
     (outermost) end. *)
  let op =
    Op.make (Op.All_gather { dim_axes = [| [ ("a", 2) ]; [] |] }) [ x ] ()
  in
  let p =
    program_of ~mesh ~params:[ x ]
      ~input_layouts:[ [| [ "a"; "b" ]; [] |] ]
      ~body:[ op ] ~results:op.Op.results
      ~output_layouts:[ [| [ "b" ]; [] |] ]
  in
  check_has_code "gather of a non-suffix axis" "SC002" (Shard_check.program p)

let test_double_slice () =
  let mesh = Mesh.create [ ("a", 2) ] in
  let x = Value.fresh ~name:"x" (f32 [| 4; 4 |]) in
  let op = Op.make (Op.All_slice { dim_axes = [| [ ("a", 2) ]; [] |] }) [ x ] () in
  let p =
    program_of ~mesh ~params:[ x ]
      ~input_layouts:[ [| [ "a" ]; [] |] ]
      ~body:[ op ] ~results:op.Op.results
      ~output_layouts:[ [| [ "a"; "a" ]; [] |] ]
  in
  check_has_code "axis slicing a dim twice" "SC003" (Shard_check.program p)

(* {1 CollectiveLint: planted deadlocks} *)

let ev path desc group = { Collective_lint.path; desc; group }

let test_swapped_all_reduce_order () =
  let mesh = Mesh.create [ ("d", 2) ] in
  let traces =
    [|
      [ ev "p/op#0" "all_reduce sum {a:2}" [ 0; 1 ];
        ev "p/op#1" "all_reduce sum {b:2}" [ 0; 1 ] ];
      [ ev "p/op#0" "all_reduce sum {b:2}" [ 0; 1 ];
        ev "p/op#1" "all_reduce sum {a:2}" [ 0; 1 ] ];
    |]
  in
  check_has_code "swapped all_reduce order" "CL005"
    (Collective_lint.check_traces mesh traces)

let test_replica_group_missing_device () =
  let mesh = Mesh.create [ ("d", 2) ] in
  let traces =
    [|
      [ ev "p/op#0" "all_reduce sum {d:2}" [ 1 ] ];
      [ ev "p/op#0" "all_reduce sum {d:2}" [ 0; 1 ] ];
    |]
  in
  check_has_code "group missing its own device" "CL004"
    (Collective_lint.check_traces mesh traces)

let test_peer_exhausted () =
  let mesh = Mesh.create [ ("d", 2) ] in
  let traces =
    [| [ ev "p/op#0" "all_reduce sum {d:2}" [ 0; 1 ] ]; [] |]
  in
  check_has_code "peer finished early" "CL006"
    (Collective_lint.check_traces mesh traces)

let test_collective_bad_axis () =
  let mesh = Mesh.create [ ("d", 2) ] in
  let x = Value.fresh ~name:"x" (f32 [| 4; 4 |]) in
  let mk kind =
    let op = Op.make kind [ x ] () in
    { Func.name = "coll"; params = [ x ]; body = [ op ]; results = op.Op.results }
  in
  check_has_code "unknown axis" "CL001"
    (Collective_lint.func ~mesh
       (mk (Op.All_reduce { axes = [ ("z", 2) ]; reduce = Op.Rsum })));
  check_has_code "wrong size" "CL002"
    (Collective_lint.func ~mesh
       (mk (Op.All_reduce { axes = [ ("d", 4) ]; reduce = Op.Rsum })))

(* {1 The real pipeline verifies clean} *)

let check_jit_clean name mesh (step : Models.Train.step) tactics =
  let r = jit ~ties:step.Models.Train.ties mesh step.Models.Train.func tactics in
  check_clean (name ^ " staged") (Analysis.check_staged r.Schedule.staged);
  check_clean (name ^ " fused") (Analysis.check_program r.Schedule.program);
  check_clean (name ^ " unfused")
    (Analysis.check_program
       (Lower.lower ~ties:step.Models.Train.ties ~fuse:false r.Schedule.staged))

let test_mlp_clean () =
  let mesh = Mesh.create [ ("batch", 4); ("model", 2) ] in
  let step = Models.Train.training_step (Models.Mlp.forward Models.Mlp.default) in
  check_jit_clean "mlp" mesh step
    [
      Strategies.bp ~axis:"batch" ~inputs:[ "x"; "target" ] ();
      Strategies.transformer_mp ~axis:"model";
    ]

let test_transformer_clean () =
  let mesh = Mesh.create [ ("batch", 4); ("model", 2) ] in
  let cfg = { Models.Transformer.tiny with layers = 2; batch = 4; heads = 2 } in
  let step = Models.Train.training_step (Models.Transformer.forward cfg) in
  check_jit_clean "t-tiny" mesh step
    [
      Strategies.bp ~axis:"batch" ~inputs:[ "tokens"; "targets" ] ();
      Strategies.transformer_mp ~axis:"model";
    ]

(* Property: every partcheck-generated case verifies cleanly at every
   pipeline stage, before and after fusion. *)
let test_partcheck_cases_verify () =
  for seed = 0 to 24 do
    let c = Gen.generate ~seed in
    let func, mesh, pool = Gen.build c in
    check_clean (Printf.sprintf "seed %d source" seed) (Verify.func func);
    let staged = Staged.of_func mesh func in
    let _applied, _skipped = Oracle.apply_schedule c staged pool in
    check_clean (Printf.sprintf "seed %d staged" seed) (Analysis.check_staged staged);
    let p0 = Lower.lower ~fuse:false staged in
    let p1 = { p0 with Lower.func = Fusion.run p0.Lower.func } in
    check_clean (Printf.sprintf "seed %d unfused" seed) (Analysis.check_program p0);
    check_clean (Printf.sprintf "seed %d fused" seed) (Analysis.check_program p1)
  done

(* {1 Debug-mode hooks} *)

let test_debug_hooks () =
  Analysis.set_debug_checks true;
  Fun.protect
    ~finally:(fun () -> Analysis.set_debug_checks false)
    (fun () ->
      (* A legal pipeline run must pass with the hooks armed... *)
      let mesh = Mesh.create [ ("a", 2) ] in
      let t = staged_matmul ~mesh ~m:4 ~k:4 in
      let x = Option.get (Staged.find_value t "x") in
      ignore (Staged.tile t ~value:x ~dim:0 ~axis:"a");
      ignore (Propagate.run t);
      ignore (Lower.lower t);
      (* ...and a corrupted nest must raise Check_error from the next
         lowering. *)
      let t2 = staged_matmul ~mesh ~m:4 ~k:4 in
      (match t2.Staged.body with
      | [ sop ] ->
          sop.Staged.nest <-
            [
              {
                Action.axis = "zz";
                operand_dims = [| Some 0; None |];
                result_actions = [| Action.Tile 0 |];
              };
            ]
      | _ -> Alcotest.fail "unexpected staged body");
      match Staged.tile t2 ~value:(Option.get (Staged.find_value t2 "y")) ~dim:0 ~axis:"a" with
      | _ -> Alcotest.fail "debug hook did not fire on a corrupted nest"
      | exception Analysis.Check_error diags ->
          check_has_code "hook diagnostics" "S001" diags)

let () =
  Alcotest.run "verify"
    [
      ( "verify-hlo",
        [
          Alcotest.test_case "wrong result shape" `Quick test_wrong_result_shape;
          Alcotest.test_case "dtype mismatch" `Quick test_dtype_mismatch;
          Alcotest.test_case "select predicate" `Quick test_select_pred_dtype;
          Alcotest.test_case "collective axes" `Quick test_collective_axis_checks;
        ] );
      ( "verify-staged",
        [
          Alcotest.test_case "axis tiled twice" `Quick test_axis_tiled_twice;
          Alcotest.test_case "non-divisible tile" `Quick test_non_divisible_tile;
          Alcotest.test_case "unknown nest axis" `Quick test_unknown_nest_axis;
        ] );
      ( "shardcheck",
        [
          Alcotest.test_case "operand layout mismatch" `Quick
            test_operand_layout_mismatch;
          Alcotest.test_case "all_reduce without partial" `Quick
            test_all_reduce_without_partial;
          Alcotest.test_case "output layout mismatch" `Quick
            test_output_layout_mismatch;
          Alcotest.test_case "gather not suffix" `Quick test_gather_not_suffix;
          Alcotest.test_case "double slice" `Quick test_double_slice;
        ] );
      ( "collective-lint",
        [
          Alcotest.test_case "swapped all_reduce order" `Quick
            test_swapped_all_reduce_order;
          Alcotest.test_case "replica group missing device" `Quick
            test_replica_group_missing_device;
          Alcotest.test_case "peer exhausted" `Quick test_peer_exhausted;
          Alcotest.test_case "bad collective axes" `Quick test_collective_bad_axis;
        ] );
      ( "pipeline-clean",
        [
          Alcotest.test_case "mlp bp+mp" `Quick test_mlp_clean;
          Alcotest.test_case "transformer bp+mp" `Quick test_transformer_clean;
          Alcotest.test_case "partcheck cases" `Slow test_partcheck_cases_verify;
          Alcotest.test_case "debug hooks" `Quick test_debug_hooks;
        ] );
    ]
