(* Tests for the serving simulator: traces and simulations are
   seed-deterministic, the continuous-batching scheduler respects the KV
   admission budget and never decodes a request past its output length,
   goodput is exactly 1.0 fault-free and strictly below it under a fault
   plan, and the wire protocol's blocking reads survive EINTR (signals
   delivered mid-read must not tear a frame — the regression behind the
   retry loops in lib/serve/protocol.ml). *)

module Servesim = Partir.Servesim
module Workload = Servesim.Workload
module Costs = Servesim.Costs
module Sim = Servesim.Sim
module Mesh = Partir_mesh.Mesh
module Hardware = Partir_sim.Hardware
module Faults = Partir_sim.Faults
module Transformer = Partir_models.Transformer
module Protocol = Partir_serve.Protocol

(* One smoke-scale cost table shared by every test: jitting the bucket
   ladder is the expensive part, and the simulator itself is pure. *)
let smoke_cfg =
  { Transformer.layers = 6; d_model = 384; heads = 8; vocab = 512;
    batch = 32; seq = 64 }

let smoke_mesh = Mesh.create [ ("batch", 4); ("model", 2) ]

let costs =
  lazy
    (Costs.build ~hardware:Hardware.toy ~mesh:smoke_mesh ~cfg:smoke_cfg
       ~buckets:[ 8; 16; 32 ] "BP")

let trace ?(seed = 42) ?(qps = 4.) ?(requests = 32) () =
  Workload.poisson ~seed ~qps ~requests ~prompt_range:(8, 24)
    ~output_range:(8, 24)

let options =
  { Sim.max_batch = 32; queue_bound = 16; restart_overhead_ms = 5.;
    retry_backoff_ms = 0.5 }

(* --- determinism ------------------------------------------------------- *)

let test_trace_determinism () =
  let t1 = trace () and t2 = trace () in
  Alcotest.(check bool) "same seed, same trace" true (t1 = t2);
  let t3 = trace ~seed:43 () in
  Alcotest.(check bool) "different seed, different trace" false (t1 = t3);
  let rec sorted = function
    | (a : Workload.request) :: (b :: _ as rest) ->
        a.arrival_ms <= b.arrival_ms && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "arrivals sorted" true (sorted t1)

let test_sim_determinism () =
  let c = Lazy.force costs in
  let t = trace () in
  let m1, o1 = Sim.simulate ~options c t in
  let m2, o2 = Sim.simulate ~options c t in
  Alcotest.(check bool) "identical metrics" true (m1 = m2);
  Alcotest.(check bool) "identical outcomes" true (o1 = o2)

(* --- batching invariants ----------------------------------------------- *)

let test_admission_invariants () =
  let c = Lazy.force costs in
  (* High enough load that the batch actually fills and the KV pool sees
     pressure; the admission controller must still never oversubscribe. *)
  let m, _ = Sim.simulate ~options c (trace ~qps:64. ~requests:64 ()) in
  Alcotest.(check int) "no admission violations" 0 m.Sim.admission_violations;
  Alcotest.(check bool)
    "KV peak within the per-device budget" true
    (m.Sim.kv_peak_bytes <= m.Sim.kv_budget_bytes +. 1e-6)

let test_output_lengths () =
  let c = Lazy.force costs in
  let _, outcomes = Sim.simulate ~options c (trace ()) in
  List.iter
    (fun (o : Sim.outcome) ->
      Alcotest.(check bool)
        "never decodes past the requested output" true
        (o.tokens_out <= o.request.output);
      if (not o.shed) && not o.infeasible then (
        Alcotest.(check int)
          "completed request got exactly its output" o.request.output
          o.tokens_out;
        Alcotest.(check bool) "completed request has a TTFT" false
          (Float.is_nan o.ttft_ms);
        Alcotest.(check bool)
          "TTFT precedes completion" true
          (o.ttft_ms <= o.completion_ms)))
    outcomes

let test_oversized_request_infeasible () =
  let c = Lazy.force costs in
  (* A prompt+output reservation far beyond the KV budget must be rejected
     as infeasible, not admitted or left queued forever. *)
  let huge =
    int_of_float (c.Costs.kv_budget_bytes /. c.Costs.kv_bytes_per_token_per_device)
    * 2
  in
  let t = Workload.of_list [ (0., huge, 8); (1., 8, 8) ] in
  let m, outcomes = Sim.simulate ~options c t in
  let big = List.find (fun (o : Sim.outcome) -> o.request.prompt = huge) outcomes in
  Alcotest.(check bool) "oversized request marked infeasible" true
    big.Sim.infeasible;
  Alcotest.(check int) "the feasible request still completes" 1
    m.Sim.completed;
  Alcotest.(check int) "rejection is not a violation" 0
    m.Sim.admission_violations

(* --- goodput under fault plans ----------------------------------------- *)

let test_goodput_fault_free () =
  let c = Lazy.force costs in
  let m, _ = Sim.simulate ~options c (trace ()) in
  Alcotest.(check (float 1e-9)) "goodput is exactly 1 without faults" 1.0
    m.Sim.goodput;
  Alcotest.(check (float 1e-6)) "busy equals useful" m.Sim.useful_ms
    m.Sim.busy_ms;
  Alcotest.(check int) "no recoveries" 0 m.Sim.recoveries;
  Alcotest.(check int) "no retries" 0 m.Sim.retries

let test_goodput_under_faults () =
  let c = Lazy.force costs in
  let plan =
    { Faults.seed = 7;
      faults =
        [ Faults.Straggler { device = 0; factor = 1.5 };
          Faults.Crash { step = 5; device = 0; at_frac = 0.5 };
          Faults.Drop_collective { step = 9; collective = 0; failures = 3 } ];
    }
  in
  let t = trace () in
  let fault_free, _ = Sim.simulate ~options c t in
  let m, _ = Sim.simulate ~options ~faults:plan c t in
  Alcotest.(check bool) "goodput degrades under faults" true
    (m.Sim.goodput < 1.0);
  Alcotest.(check bool) "goodput stays positive" true (m.Sim.goodput > 0.);
  Alcotest.(check int) "the crash is counted as a recovery" 1
    m.Sim.recoveries;
  Alcotest.(check int) "dropped-collective retries are counted" 3
    m.Sim.retries;
  Alcotest.(check bool) "faults cost wall time" true
    (m.Sim.busy_ms > fault_free.Sim.busy_ms);
  Alcotest.(check bool)
    "faults do not change what was computed" true
    (m.Sim.completed = fault_free.Sim.completed)

(* --- protocol EINTR regression ----------------------------------------- *)

(* A signal delivered while the server blocks in [read_request] interrupts
   the underlying [Unix.read] with EINTR (OCaml installs handlers without
   SA_RESTART). The framed read must retry, not raise or tear the frame:
   the daemon takes SIGINT/SIGTERM for graceful drain while replies are
   still in flight. *)
let test_read_survives_eintr () =
  let parent_read, child_write = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let hits = ref 0 in
  let old = Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> incr hits)) in
  let parent = Unix.getpid () in
  let request = { Protocol.default_request with model = "eintr-probe" } in
  match Unix.fork () with
  | 0 ->
      (* Child: let the parent block in read, interrupt it twice — once
         before any byte arrives, once mid-frame — then finish the write. *)
      Unix.close parent_read;
      let frame =
        let buf = Buffer.create 256 in
        let r, w = Unix.pipe () in
        Protocol.write_request w request;
        Unix.close w;
        let b = Bytes.create 4096 in
        let rec drain () =
          match Unix.read r b 0 (Bytes.length b) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf b 0 n;
              drain ()
        in
        drain ();
        Unix.close r;
        Buffer.to_bytes buf
      in
      let write off len =
        let rec go off len =
          if len > 0 then
            let n = Unix.write child_write frame off len in
            go (off + n) (len - n)
        in
        go off len
      in
      Unix.sleepf 0.05;
      Unix.kill parent Sys.sigusr1;
      Unix.sleepf 0.05;
      write 0 5;
      Unix.sleepf 0.05;
      Unix.kill parent Sys.sigusr1;
      Unix.sleepf 0.05;
      write 5 (Bytes.length frame - 5);
      Unix.close child_write;
      Unix._exit 0
  | pid ->
      Unix.close child_write;
      let got =
        Fun.protect
          ~finally:(fun () ->
            Unix.close parent_read;
            ignore (Unix.waitpid [] pid);
            ignore (Sys.signal Sys.sigusr1 old))
          (fun () -> Protocol.read_request parent_read)
      in
      Alcotest.(check bool) "both signals were delivered" true (!hits >= 1);
      match got with
      | Some r ->
          Alcotest.(check string) "frame survived the interruptions intact"
            "eintr-probe" r.Protocol.model
      | None -> Alcotest.fail "read_request returned EOF"

let () =
  Alcotest.run "servesim"
    [
      ( "determinism",
        [
          Alcotest.test_case "poisson trace" `Quick test_trace_determinism;
          Alcotest.test_case "simulation" `Quick test_sim_determinism;
        ] );
      ( "batching invariants",
        [
          Alcotest.test_case "kv admission" `Quick test_admission_invariants;
          Alcotest.test_case "output lengths" `Quick test_output_lengths;
          Alcotest.test_case "oversized request" `Quick
            test_oversized_request_infeasible;
        ] );
      ( "goodput",
        [
          Alcotest.test_case "fault-free" `Quick test_goodput_fault_free;
          Alcotest.test_case "under faults" `Quick test_goodput_under_faults;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "read survives EINTR" `Quick
            test_read_survives_eintr;
        ] );
    ]
