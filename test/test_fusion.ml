(* Direct unit tests for the collective-fusion passes: gather/slice
   cancellation, all_to_all formation, the reduce_scatter leftover-axes
   path, and the tied-gradient regression (adds of shared-parameter
   reduction contributions must fuse to one all_reduce per mesh axis,
   however many contributions there are — the pass pipeline must run to
   its fixpoint, not a fixed number of sweeps). *)

open Partir_tensor
open Partir_hlo
module Mesh = Partir_mesh.Mesh
module Staged = Partir_core.Staged
module Propagate = Partir_core.Propagate
module Lower = Partir_spmd.Lower
module Fusion = Partir_spmd.Fusion
module Census = Partir_spmd.Census
module Spmd_interp = Partir_spmd.Spmd_interp
module B = Builder

let census_check name (want : Census.t) (f : Func.t) =
  Alcotest.(check string) name (Census.to_string want)
    (Census.to_string (Census.of_func f))

let test_gather_slice_cancellation () =
  let b = B.create "cancel" in
  let x = B.param b "x" [| 4; 8 |] Dtype.F32 in
  let da = [| [ ("a", 2) ]; [] |] in
  let g = B.add b (Op.All_gather { dim_axes = da }) [ x ] in
  let s = B.add b (Op.All_slice { dim_axes = da }) [ g ] in
  let f = B.finish b [ s ] in
  let fused = Fusion.run f in
  Func.verify fused;
  census_check "pair cancelled" Census.zero fused;
  Alcotest.(check int) "no ops left" 0 (List.length fused.Func.body)

let test_all_to_all_formation () =
  let b = B.create "a2a" in
  let x = B.param b "x" [| 4; 8 |] Dtype.F32 in
  let g = B.add b (Op.All_gather { dim_axes = [| [ ("a", 2) ]; [] |] }) [ x ] in
  let s = B.add b (Op.All_slice { dim_axes = [| []; [ ("a", 2) ] |] }) [ g ] in
  let f = B.finish b [ s ] in
  let fused = Fusion.run f in
  Func.verify fused;
  census_check "gather+slice became all_to_all"
    { Census.zero with Census.all_to_all = 1 }
    fused;
  Alcotest.(check int) "single op" 1 (List.length fused.Func.body)

let test_reduce_scatter_leftover_axes () =
  (* all_slice over a strict subset of the reduced axes: the leftover axis
     keeps an all_reduce, the sliced axis becomes the reduce_scatter. *)
  let b = B.create "rs" in
  let x = B.param b "x" [| 8; 8 |] Dtype.F32 in
  let ar =
    B.add b
      (Op.All_reduce { axes = [ ("a", 2); ("b", 2) ]; reduce = Op.Rsum })
      [ x ]
  in
  let s = B.add b (Op.All_slice { dim_axes = [| [ ("a", 2) ]; [] |] }) [ ar ] in
  let f = B.finish b [ s ] in
  let fused = Fusion.run f in
  Func.verify fused;
  census_check "leftover AR + RS"
    { Census.zero with Census.all_reduce = 1; Census.reduce_scatter = 1 }
    fused

let test_full_overlap_reduce_scatter () =
  let b = B.create "rs-full" in
  let x = B.param b "x" [| 8; 8 |] Dtype.F32 in
  let ar = B.add b (Op.All_reduce { axes = [ ("a", 2) ]; reduce = Op.Rsum }) [ x ] in
  let s = B.add b (Op.All_slice { dim_axes = [| [ ("a", 2) ]; [] |] }) [ ar ] in
  let f = B.finish b [ s ] in
  let fused = Fusion.run f in
  Func.verify fused;
  census_check "pure reduce_scatter"
    { Census.zero with Census.reduce_scatter = 1 }
    fused

let test_tied_gradient_adds () =
  (* Three contributions through a shared parameter, contraction dim
     deep-tiled on both mesh axes: each matmul's partial sums lower to one
     all_reduce per axis, and the adds of those reductions must fuse until
     exactly one all_reduce per axis remains (a fixed two-sweep pipeline
     leaves k+1 of them behind). *)
  let mesh = Mesh.create [ ("a", 2); ("b", 2) ] in
  let n = 8 in
  let b = B.create "tied" in
  let xs =
    List.init 3 (fun i -> B.param b (Printf.sprintf "x%d" i) [| n; n |] Dtype.F32)
  in
  let w = B.param b "w" [| n; n |] Dtype.F32 in
  let total =
    match List.map (fun x -> B.matmul b x w) xs with
    | c :: rest -> List.fold_left (B.add2 b) c rest
    | [] -> assert false
  in
  let f = B.finish b [ total ] in
  let staged = Staged.of_func mesh f in
  List.iter
    (fun x ->
      ignore (Staged.tile staged ~value:x ~dim:1 ~axis:"a");
      ignore (Staged.tile staged ~value:x ~dim:1 ~axis:"b"))
    xs;
  ignore (Propagate.run staged);
  let p = Lower.lower staged in
  let c = Census.of_program p in
  Alcotest.(check int) "one all_reduce per mesh axis" 2 c.Census.all_reduce;
  census_check "second pass is a no-op"
    (Census.of_func p.Lower.func)
    (Fusion.run p.Lower.func);
  let st = Random.State.make [| 17 |] in
  let args =
    List.map
      (fun (prm : Value.t) ->
        Literal.init prm.Value.ty.Value.dtype prm.Value.ty.Value.shape (fun _ ->
            Random.State.float st 2.0 -. 1.0))
      f.Func.params
  in
  List.iter2
    (fun want got ->
      Alcotest.(check bool) "spmd matches reference" true
        (Literal.max_abs_diff want got < 1e-3))
    (Interp.run f args)
    (Spmd_interp.run p args)

let () =
  Alcotest.run "fusion"
    [
      ( "passes",
        [
          Alcotest.test_case "gather/slice cancellation" `Quick
            test_gather_slice_cancellation;
          Alcotest.test_case "all_to_all formation" `Quick
            test_all_to_all_formation;
          Alcotest.test_case "reduce_scatter leftover axes" `Quick
            test_reduce_scatter_leftover_axes;
          Alcotest.test_case "reduce_scatter full overlap" `Quick
            test_full_overlap_reduce_scatter;
        ] );
      ( "tied-gradients",
        [ Alcotest.test_case "adds of reduces reach fixpoint" `Quick
            test_tied_gradient_adds ] );
    ]
