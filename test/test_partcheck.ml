(* Tests for the partition oracle (partcheck): the encode/parse replay
   format round-trips, the oracle passes a smoke batch of generated cases,
   the shrinker minimizes against a synthetic predicate, and the fuzz case
   that exposed fusion non-idempotence stays fixed. *)

module Gen = Partir_check.Gen
module Shrink = Partir_check.Shrink
module Runner = Partir_check.Runner

let null_out = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let test_smoke () =
  let s = Runner.run ~out:null_out ~cases:40 ~seed:42 () in
  Alcotest.(check int) "no failures" 0 s.Runner.failed;
  Alcotest.(check int) "all passed" 40 s.Runner.passed;
  Alcotest.(check bool) "tactics exercised" true (s.Runner.tactics_applied > 0);
  Alcotest.(check bool) "collectives exercised" true (s.Runner.collectives > 0)

let test_roundtrip () =
  for seed = 0 to 30 do
    let c = Gen.generate ~seed in
    match Gen.parse (Gen.encode c) with
    | Ok c' -> Alcotest.(check bool) "roundtrip" true (c = c')
    | Error e -> Alcotest.fail e
  done

let test_parse_errors () =
  (match Gen.parse "1 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated case accepted");
  match Gen.parse "zzz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk accepted"

let test_shrinker () =
  (* Synthetic bug: any case with a matmul on a multi-axis mesh. The
     shrinker should strip everything else. *)
  let pred (c : Gen.t) =
    List.length c.Gen.mesh >= 2
    && List.exists (function Gen.Matmul _ -> true | _ -> false) c.Gen.ops
  in
  let case =
    {
      Gen.seed = 7;
      n = 8;
      params = 3;
      mesh = [ ("a", 4); ("b", 3); ("c", 2) ];
      ops =
        [ Gen.Unary (0, 0); Gen.Matmul (1, 2); Gen.Reduce 1; Gen.Binary (0, 1, 2) ];
      sched = [ Gen.Tile { target = 0; dim = 0; axis = 0 } ] ;
    }
  in
  Alcotest.(check bool) "initial case fails" true (pred case);
  let shrunk, calls = Shrink.shrink pred case in
  Alcotest.(check bool) "shrunk still fails" true (pred shrunk);
  Alcotest.(check bool) "shrinking did work" true (calls > 0);
  Alcotest.(check int) "one op left" 1 (List.length shrunk.Gen.ops);
  Alcotest.(check bool) "it is the matmul" true
    (match shrunk.Gen.ops with [ Gen.Matmul _ ] -> true | _ -> false);
  Alcotest.(check int) "minimal multi-axis mesh" 2 (List.length shrunk.Gen.mesh);
  List.iter
    (fun (_, s) -> Alcotest.(check int) "axis size shrunk" 2 s)
    shrunk.Gen.mesh;
  Alcotest.(check int) "schedule dropped" 0 (List.length shrunk.Gen.sched);
  Alcotest.(check int) "params dropped" 1 shrunk.Gen.params;
  Alcotest.(check int) "tensor side halved" 2 shrunk.Gen.n

let test_fusion_idempotence_regression () =
  (* Shrunken fuzz repro (seed 515) that once failed fusion-idempotence:
     a gather/slice cancellation stayed blocked behind a stale use count
     until the trailing DCE of the first fusion sweep. *)
  match
    Runner.replay ~out:null_out "515 6 2 1 a 2 3 m 1 1 t 2 m 0 2 2 T 1 0 0 A 2 0"
  with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "regression case fails the oracle again"
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "partcheck"
    [
      ( "oracle",
        [
          Alcotest.test_case "smoke batch" `Quick test_smoke;
          Alcotest.test_case "fusion idempotence regression" `Quick
            test_fusion_idempotence_regression;
        ] );
      ( "replay",
        [
          Alcotest.test_case "encode/parse roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ("shrink", [ Alcotest.test_case "synthetic bug" `Quick test_shrinker ]);
    ]
