(* Tests for the automatic-partitioning search engine: determinism across
   domain counts, memoization transparency, the position cap, and budget
   accounting (ISSUE: fast automatic partitioning). *)

open Partir_hlo
open Partir_core
module Mesh = Partir_mesh.Mesh
module Lower = Partir_spmd.Lower
module Census = Partir_spmd.Census
module Hardware = Partir_sim.Hardware
module Auto = Partir_auto.Auto
module Mlp = Partir_models.Mlp
module Train = Partir_models.Train

let mlp_step = lazy (Train.training_step (Mlp.forward Mlp.default))
let mesh () = Mesh.create [ ("batch", 4); ("model", 2) ]
let axes = [ "batch"; "model" ]

let opts ?(budget = 24) ?(parallelism = 1) ?(memoize = true) ?(seed = 7) () =
  {
    Auto.default_options with
    hardware = Hardware.tpu_v3;
    budget;
    parallelism;
    memoize;
    seed;
    max_positions = 6;
  }

(* Run a search on a fresh staged copy of the MLP training step and return
   both the statistics and the census of the resulting lowered program, so
   tests can compare the *programs* two searches produce, not just their
   reported costs. *)
let run search o =
  let step = Lazy.force mlp_step in
  let staged = Staged.of_func (mesh ()) step.Train.func in
  let st = search o staged ~axes in
  (st, Census.of_program (Lower.lower staged))

let trajectory = Alcotest.(list (pair int (float 1e-9)))

let check_same_search name ((a : Auto.Stats.t), ca) ((b : Auto.Stats.t), cb) =
  Alcotest.(check (float 1e-9))
    (name ^ ": best cost") a.Auto.Stats.best_cost b.Auto.Stats.best_cost;
  Alcotest.(check (float 1e-9))
    (name ^ ": baseline cost") a.Auto.Stats.baseline_cost
    b.Auto.Stats.baseline_cost;
  Alcotest.check trajectory
    (name ^ ": trajectory")
    a.Auto.Stats.trajectory b.Auto.Stats.trajectory;
  Alcotest.(check string)
    (name ^ ": resulting program census")
    (Census.to_string ca) (Census.to_string cb)

let auto_tests =
  [
    Alcotest.test_case "mcts deterministic across domain counts" `Slow
      (fun () ->
        let seq = run Auto.mcts_search (opts ~parallelism:1 ()) in
        let par = run Auto.mcts_search (opts ~parallelism:3 ()) in
        check_same_search "par=1 vs par=3" seq par;
        (* Identical search trajectory implies identical cache behaviour. *)
        Alcotest.(check int)
          "same evaluations" (fst seq).Auto.Stats.evaluations
          (fst par).Auto.Stats.evaluations;
        Alcotest.(check int)
          "same cache hits" (fst seq).Auto.Stats.cache_hits
          (fst par).Auto.Stats.cache_hits);
    Alcotest.test_case "mcts deterministic across repeated runs" `Quick
      (fun () ->
        let a = run Auto.mcts_search (opts ()) in
        let b = run Auto.mcts_search (opts ()) in
        check_same_search "run twice" a b);
    Alcotest.test_case "memoization never changes the search" `Slow (fun () ->
        let memo, cm = run Auto.mcts_search (opts ~memoize:true ()) in
        let raw, cr = run Auto.mcts_search (opts ~memoize:false ()) in
        check_same_search "memo vs raw" (memo, cm) (raw, cr);
        Alcotest.(check int)
          "same lookups" memo.Auto.Stats.cache_lookups
          raw.Auto.Stats.cache_lookups;
        (* The all-Skip baseline stays memoized even with the table off, so
           the raw run still reports those hits; the table only saves
           non-baseline evaluations. *)
        Alcotest.(check bool)
          "memoized run has extra cache hits" true
          (memo.Auto.Stats.cache_hits > raw.Auto.Stats.cache_hits);
        Alcotest.(check bool)
          "memoized run evaluates strictly less" true
          (memo.Auto.Stats.evaluations < raw.Auto.Stats.evaluations));
    Alcotest.test_case "mcts improves on the all-Skip baseline" `Quick
      (fun () ->
        let st, _ = run Auto.mcts_search (opts ()) in
        Alcotest.(check bool)
          "best <= baseline" true
          (st.Auto.Stats.best_cost <= st.Auto.Stats.baseline_cost);
        (match st.Auto.Stats.trajectory with
        | (0, c) :: _ ->
            Alcotest.(check (float 1e-9))
              "trajectory starts at baseline" st.Auto.Stats.baseline_cost c
        | _ -> Alcotest.fail "trajectory must start at iteration 0"));
    Alcotest.test_case "greedy respects the evaluation budget" `Quick
      (fun () ->
        let budget = 5 in
        let st, _ = run Auto.greedy_search (opts ~budget ()) in
        Alcotest.(check bool)
          "lookups within budget" true
          (st.Auto.Stats.cache_lookups <= budget);
        Alcotest.(check bool)
          "best <= baseline" true
          (st.Auto.Stats.best_cost <= st.Auto.Stats.baseline_cost));
  ]

let positions_tests =
  [
    Alcotest.test_case "positions: biggest inputs first, axes adjacent"
      `Quick (fun () ->
        let step = Lazy.force mlp_step in
        let staged = Staged.of_func (mesh ()) step.Train.func in
        let all = Auto.positions staged axes in
        let n_params =
          List.length
            (List.filter
               (fun (p : Value.t) ->
                 Array.length p.Value.ty.Value.shape >= 1)
               staged.Staged.params)
        in
        Alcotest.(check int)
          "one position per (input, axis)"
          (n_params * List.length axes)
          (List.length all);
        (* Each input contributes its axes adjacently, in the given order. *)
        (match all with
        | (a0, p0) :: (a1, p1) :: _ ->
            Alcotest.(check string) "first axis" "batch" a0;
            Alcotest.(check string) "second axis" "model" a1;
            Alcotest.(check int)
              "both head positions target the biggest input" p0.Value.id
              p1.Value.id
        | _ -> Alcotest.fail "expected at least two positions");
        let sizes =
          List.filteri (fun i _ -> i mod List.length axes = 0) all
          |> List.map (fun (_, p) -> Value.size_in_bytes p)
        in
        Alcotest.(check bool)
          "inputs ordered by decreasing size" true
          (List.for_all2 ( >= ) sizes (List.tl sizes @ [ min_int ])));
    Alcotest.test_case "positions: deterministic total cap" `Quick (fun () ->
        let step = Lazy.force mlp_step in
        let staged = Staged.of_func (mesh ()) step.Train.func in
        let all = Auto.positions staged axes in
        let capped = Auto.positions ~max_positions:5 staged axes in
        Alcotest.(check int) "cap hit exactly" 5 (List.length capped);
        List.iteri
          (fun i (a, (p : Value.t)) ->
            let a', (p' : Value.t) = List.nth all i in
            Alcotest.(check string) "same axis" a' a;
            Alcotest.(check int) "same input" p'.Value.id p.Value.id)
          capped;
        Alcotest.(check int)
          "zero cap allowed" 0
          (List.length (Auto.positions ~max_positions:0 staged axes)));
  ]

(* A 4x4 matmul over mesh {a:2, b:4}: dim 0 of [x] is divisible by each axis
   individually, so the search proposes [Tile 0] for both axes, but tiling the
   same dim with both (2*4 = 8 > 4) is infeasible.  Such rollouts must be
   recorded as infinite cost and counted in [failed_evaluations] rather than
   crash the search. *)
let infeasible_staged () =
  let b = Builder.create "tiny_matmul" in
  let x = Builder.param b "x" [| 4; 4 |] Partir_tensor.Dtype.F32 in
  let w = Builder.param b "w" [| 4; 4 |] Partir_tensor.Dtype.F32 in
  let y = Builder.matmul b x w in
  Staged.of_func
    (Mesh.create [ ("a", 2); ("b", 4) ])
    (Builder.finish b [ y ])

let infeasible_tests =
  [
    Alcotest.test_case "infeasible rollouts are counted, not fatal" `Quick
      (fun () ->
        let o = opts ~budget:128 () in
        let run () =
          Auto.mcts_search o (infeasible_staged ()) ~axes:[ "a"; "b" ]
        in
        let st = run () in
        Alcotest.(check bool)
          "some rollouts were infeasible" true
          (st.Auto.Stats.failed_evaluations > 0);
        Alcotest.(check bool)
          "best cost is still finite" true
          (st.Auto.Stats.best_cost < infinity);
        Alcotest.(check bool)
          "best <= baseline" true
          (st.Auto.Stats.best_cost <= st.Auto.Stats.baseline_cost);
        let st' = run () in
        Alcotest.(check int)
          "failure count is deterministic" st.Auto.Stats.failed_evaluations
          st'.Auto.Stats.failed_evaluations);
    Alcotest.test_case "greedy survives infeasible options" `Quick (fun () ->
        let st =
          Auto.greedy_search
            (opts ~budget:64 ())
            (infeasible_staged ()) ~axes:[ "a"; "b" ]
        in
        Alcotest.(check bool)
          "some options were infeasible" true
          (st.Auto.Stats.failed_evaluations > 0);
        Alcotest.(check bool)
          "best <= baseline" true
          (st.Auto.Stats.best_cost <= st.Auto.Stats.baseline_cost));
  ]

let () =
  Alcotest.run "auto"
    [
      ("search", auto_tests);
      ("positions", positions_tests);
      ("infeasible", infeasible_tests);
    ]
