(* Fault-tolerant SPMD execution: discrete-event engine parity with the
   measured-profile walk, fault detection (crash / straggler / degraded
   link / dropped collective), retry/backoff accounting, mesh shrinking,
   and end-to-end recovery properties — a run with an injected fault plus
   recovery produces literals equal to the fault-free reference run, for
   both checkpoint/restart (bit-equal) and mesh-shrink re-partitioning
   (reference-interpreter tolerance). *)

open Partir_tensor
open Partir_hlo
module Mesh = Partir_mesh.Mesh
module Staged = Partir_core.Staged
module Action = Partir_core.Action
module Lower = Partir_spmd.Lower
module Spmd_interp = Partir_spmd.Spmd_interp
module Temporal = Partir_temporal.Temporal
module Schedule = Partir_schedule.Schedule
module Strategies = Partir_strategies.Strategies
module Hardware = Partir_sim.Hardware
module Cost_model = Partir_sim.Cost_model
module Engine = Partir_sim.Engine
module Faults = Partir_sim.Faults
module Train = Partir_models.Train
module Transformer = Partir_models.Transformer
module Unet = Partir_models.Unet

let hw = Hardware.tpu_v3
let profile = Cost_model.measured

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ---------------- workloads ---------------- *)

let t32_cfg = { Transformer.tiny with layers = 4; batch = 8; heads = 4 }
let t32_step = lazy (Train.training_step (Transformer.forward t32_cfg))
let unet_step = lazy (Train.training_step (Unet.forward Unet.tiny))

let t32_mesh () = Mesh.create [ ("batch", 4); ("model", 2) ]

let t32_tactics () =
  [
    Strategies.bp ~axis:"batch" ~inputs:[ "tokens"; "targets" ] ();
    Strategies.transformer_mp ~axis:"model";
    Strategies.transformer_z3 ~axis:"batch";
  ]

let t32_jit mesh =
  let step = Lazy.force t32_step in
  Schedule.jit ~hardware:hw ~ties:step.Train.ties mesh step.Train.func
    (t32_tactics ())

(* Unet.tiny has batch 2, so the batch axis is 2; the shrink policy halves
   it to 1 (the program degenerates to model-parallel only). *)
let unet_mesh () = Mesh.create [ ("batch", 2); ("model", 2) ]

let unet_tactics () =
  [
    Strategies.bp ~axis:"batch" ~inputs:[ "x"; "temb"; "target" ] ();
    Strategies.unet_z ~level:`Z3 ~axis:"batch";
  ]

let unet_jit mesh =
  let step = Lazy.force unet_step in
  Schedule.jit ~hardware:hw ~ties:step.Train.ties mesh step.Train.func
    (unet_tactics ())

let random_args seed (f : Func.t) =
  let st = Random.State.make [| seed |] in
  List.map
    (fun (p : Value.t) ->
      let is_int = Dtype.is_integer p.Value.ty.Value.dtype in
      let non_negative = Filename.check_suffix p.Value.name ".v" in
      Literal.init p.Value.ty.Value.dtype p.Value.ty.Value.shape (fun _ ->
          if is_int then float_of_int (Random.State.int st 8)
          else
            let x = Random.State.float st 0.2 -. 0.1 in
            if non_negative then Float.abs x else x))
    f.Func.params

(* ---------------- engine unit tests ---------------- *)

let engine_report = function
  | Engine.Completed r -> r
  | Engine.Failed { failure; _ } ->
      Alcotest.failf "unexpected failure: %a" Engine.pp_failure failure

let test_parity () =
  let r = t32_jit (t32_mesh ()) in
  let walk = Cost_model.run_walk profile hw r.Schedule.program in
  let eng = Engine.estimate profile hw r.Schedule.program in
  Alcotest.(check (float 1e-9))
    "runtime" walk.Cost_model.runtime_ms eng.Cost_model.runtime_ms;
  Alcotest.(check (float 1e-9))
    "compute" walk.Cost_model.compute_ms eng.Cost_model.compute_ms;
  Alcotest.(check (float 1e-9))
    "comm" walk.Cost_model.comm_ms eng.Cost_model.comm_ms;
  Alcotest.(check (float 1e-9))
    "memory" walk.Cost_model.peak_memory_mb eng.Cost_model.peak_memory_mb;
  (* Cost_model.run routes through the engine for discrete_event profiles
     (the engine is linked into this binary). *)
  let routed = Cost_model.run profile hw r.Schedule.program in
  Alcotest.(check (float 1e-9))
    "run delegates" eng.Cost_model.runtime_ms routed.Cost_model.runtime_ms

let test_straggler () =
  let r = t32_jit (t32_mesh ()) in
  let p = r.Schedule.program in
  let healthy = engine_report (Engine.simulate profile hw p) in
  let slow =
    engine_report
      (Engine.simulate
         ~condition:
           {
             Engine.healthy with
             slowdown = (fun d -> if d = 2 then 1.5 else 1.);
           }
         profile hw p)
  in
  let h_rt = healthy.Engine.estimate.Cost_model.runtime_ms in
  let s_rt = slow.Engine.estimate.Cost_model.runtime_ms in
  Alcotest.(check bool) "straggler slows the whole mesh" true (s_rt > h_rt);
  (* Only compute is scaled (by at most 1.5), so the barrier-synchronized
     runtime is bounded by 1.5x the healthy one. *)
  Alcotest.(check bool) "slowdown bounded by factor" true
    (s_rt <= (1.5 *. h_rt) +. 1e-9);
  (* The straggler owns the slowest clock. *)
  let mx = Array.fold_left Float.max 0. slow.Engine.device_ms in
  Alcotest.(check (float 1e-9)) "straggler is slowest" mx
    slow.Engine.device_ms.(2)

let test_link_degrade () =
  let r = t32_jit (t32_mesh ()) in
  let p = r.Schedule.program in
  let healthy = engine_report (Engine.simulate profile hw p) in
  let degraded =
    engine_report
      (Engine.simulate
         ~condition:
           {
             Engine.healthy with
             link_factor = (fun a -> if a = "model" then 0.25 else 1.);
           }
         profile hw p)
  in
  Alcotest.(check bool)
    "degraded link raises comm time" true
    (degraded.Engine.estimate.Cost_model.comm_ms
    > healthy.Engine.estimate.Cost_model.comm_ms)

let test_crash_detection () =
  let r = t32_jit (t32_mesh ()) in
  let p = r.Schedule.program in
  match
    Engine.simulate
      ~condition:
        {
          Engine.healthy with
          crash_time = (fun d -> if d = 3 then Some 0. else None);
        }
      profile hw p
  with
  | Engine.Completed _ -> Alcotest.fail "crash not detected"
  | Engine.Failed { failure = Engine.Device_crash { device; detected_at_ms }; elapsed_ms; _ }
    ->
      Alcotest.(check int) "crashed device identified" 3 device;
      Alcotest.(check bool)
        "detected one timeout after the barrier" true
        (detected_at_ms >= Engine.default_retry.Engine.timeout_ms);
      Alcotest.(check (float 1e-9)) "elapsed = detection" detected_at_ms elapsed_ms
  | Engine.Failed { failure; _ } ->
      Alcotest.failf "wrong failure: %a" Engine.pp_failure failure

let test_retry_accounting () =
  let r = t32_jit (t32_mesh ()) in
  let p = r.Schedule.program in
  let retry =
    {
      Engine.timeout_ms = 5.;
      backoff = 2.;
      max_retries = 3;
      jitter = Engine.No_jitter;
      seed = 0;
    }
  in
  let condition drops =
    {
      Engine.healthy with
      drops = (fun i -> if i = 0 then drops else 0);
      retry;
    }
  in
  (* 2 failed deliveries with timeout 5ms and backoff 2: waits 5 + 10. *)
  (match Engine.simulate ~condition:(condition 2) profile hw p with
  | Engine.Completed rep ->
      Alcotest.(check int) "retries" 2 rep.Engine.retries;
      Alcotest.(check (float 1e-9)) "backoff wait" 15. rep.Engine.retry_wait_ms;
      let healthy = engine_report (Engine.simulate profile hw p) in
      Alcotest.(check (float 1e-6))
        "wall = healthy + wait"
        (healthy.Engine.estimate.Cost_model.runtime_ms +. 15.)
        rep.Engine.estimate.Cost_model.runtime_ms
  | Engine.Failed _ -> Alcotest.fail "2 drops are within the retry budget");
  (* 4 failed deliveries exhaust max_retries = 3. *)
  match Engine.simulate ~condition:(condition 4) profile hw p with
  | Engine.Completed _ -> Alcotest.fail "4 drops must exhaust the budget"
  | Engine.Failed { failure = Engine.Collective_timeout { collective; _ }; _ } ->
      Alcotest.(check int) "which collective" 0 collective
  | Engine.Failed { failure; _ } ->
      Alcotest.failf "wrong failure: %a" Engine.pp_failure failure

let test_retry_jitter () =
  let r = t32_jit (t32_mesh ()) in
  let p = r.Schedule.program in
  let retry seed =
    { Engine.default_retry with Engine.jitter = Engine.Decorrelated; seed }
  in
  let base = Engine.default_retry.Engine.timeout_ms *. 1e-3 in
  List.iter
    (fun seed ->
      let w1 = Engine.backoff_wait (retry seed) ~collective:0 ~attempts:1 in
      Alcotest.(check (float 1e-12)) "first attempt is the base timeout" base w1;
      let w3 = Engine.backoff_wait (retry seed) ~collective:0 ~attempts:3 in
      (* w0 = base; w1 in [base, 3*base]; w2 in [base, cap = 8*base]. *)
      Alcotest.(check bool)
        "within the decorrelated envelope" true
        (w3 >= 3. *. base && w3 <= 12. *. base);
      Alcotest.(check (float 1e-12))
        "same seed reproduces the wait" w3
        (Engine.backoff_wait (retry seed) ~collective:0 ~attempts:3))
    [ 1; 2; 3; 4 ];
  let ws =
    List.map
      (fun s -> Engine.backoff_wait (retry s) ~collective:0 ~attempts:4)
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Alcotest.(check bool)
    "seeds decorrelate the waits" true
    (List.exists (fun w -> abs_float (w -. List.hd ws) > 1e-12) ws);
  (* End-to-end retry accounting through Faults.run_steps: the plan's seed
     drives the jitter (condition_for threads it into the retry policy), so
     the same plan is bit-reproducible, the retry *count* never changes, and
     only the *wait* moves within the jitter envelope. *)
  let plan seed =
    {
      Faults.seed;
      faults = [ Faults.Drop_collective { step = 1; collective = 0; failures = 2 } ];
    }
  in
  let run seed jitter =
    let options =
      {
        Faults.default_options with
        retry = { Engine.default_retry with Engine.jitter };
      }
    in
    fst (Faults.run_steps ~options ~steps:3 ~plan:(plan seed) profile hw p)
  in
  let m = run 11 Engine.Decorrelated and m' = run 11 Engine.Decorrelated in
  Alcotest.(check int) "jittered retries" 2 m.Faults.retries;
  Alcotest.(check (float 1e-12))
    "jittered run is seed-reproducible" m.Faults.retry_wait_ms
    m'.Faults.retry_wait_ms;
  let det = run 11 Engine.No_jitter in
  Alcotest.(check (float 1e-9))
    "deterministic wait is the closed-form 5+10" 15. det.Faults.retry_wait_ms;
  Alcotest.(check int)
    "retry count invariant under jitter" det.Faults.retries m.Faults.retries;
  Alcotest.(check bool)
    "jittered wait within [10, 20] ms" true
    (m.Faults.retry_wait_ms >= 10. -. 1e-9
    && m.Faults.retry_wait_ms <= 20. +. 1e-9)

(* ---------------- mesh shrinking ---------------- *)

let test_shrink_mesh () =
  (match Faults.shrink_mesh (Mesh.create [ ("batch", 4); ("model", 2) ]) with
  | Some m ->
      Alcotest.(check int) "batch halved" 2 (Mesh.axis_size m "batch");
      Alcotest.(check int) "model kept" 2 (Mesh.axis_size m "model")
  | None -> Alcotest.fail "expected a shrunk mesh");
  (match Faults.shrink_mesh (Mesh.create [ ("a", 2); ("b", 6) ]) with
  | Some m ->
      Alcotest.(check int) "largest even axis halved" 3 (Mesh.axis_size m "b");
      Alcotest.(check int) "other kept" 2 (Mesh.axis_size m "a")
  | None -> Alcotest.fail "expected a shrunk mesh");
  Alcotest.(check bool)
    "odd axes cannot shrink" true
    (Faults.shrink_mesh (Mesh.create [ ("a", 3); ("b", 1) ]) = None)

let test_shrink_relowering () =
  (* Re-lowering the same schedule on the shrunk mesh yields a runnable
     program on half the devices, equivalent to the reference function. *)
  let mesh = t32_mesh () in
  let shrunk = Option.get (Faults.shrink_mesh mesh) in
  Alcotest.(check int)
    "half the devices"
    (Mesh.num_devices mesh / 2)
    (Mesh.num_devices shrunk);
  let r = t32_jit shrunk in
  let f = (Lazy.force t32_step).Train.func in
  let args = random_args 5 f in
  let reference = Interp.run f args in
  let spmd = Spmd_interp.run r.Schedule.program args in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "result %d matches (delta %g)" i
           (Literal.max_abs_diff a b))
        true
        (Literal.max_abs_diff a b < 1e-3))
    (List.combine reference spmd)

(* ---------------- recovery properties ---------------- *)

(* Run [steps] steps under a seeded single-crash plan; whatever program the
   run finishes on must produce the same literals as the fault-free
   reference. Checkpoint/restart keeps the original program, so its outputs
   are bit-equal to the fault-free SPMD run; mesh-shrink re-partitions, so
   it is compared to the reference interpreter within float tolerance. *)
let check_recovery name jit mesh func =
  let r = jit mesh in
  let p0 = r.Schedule.program in
  let plan =
    { Faults.seed = 3; faults = [ Faults.Crash { step = 1; device = 3; at_frac = 0.4 } ] }
  in
  let args = random_args 17 func in
  let fault_free = Spmd_interp.run p0 args in
  let reference = Interp.run func args in
  (* -- checkpoint/restart -- *)
  let m, p_final =
    Faults.run_steps
      ~options:{ Faults.default_options with policy = Faults.Checkpoint_restart }
      ~steps:4 ~plan profile hw p0
  in
  Alcotest.(check int) (name ^ ": restart completes all steps") 4 m.Faults.steps;
  Alcotest.(check int) (name ^ ": one recovery") 1 m.Faults.recoveries;
  Alcotest.(check bool) (name ^ ": goodput < 1") true (m.Faults.goodput < 1.);
  Alcotest.(check bool)
    (name ^ ": recovery time recorded") true (m.Faults.recovery_ms > 0.);
  let restarted = Spmd_interp.run p_final args in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "%s: restart result %d bit-equal" name i)
        0.
        (Literal.max_abs_diff a b))
    (List.combine fault_free restarted);
  (* -- mesh shrink -- *)
  let m2, p_shrunk =
    Faults.run_steps
      ~options:
        {
          Faults.default_options with
          policy = Faults.Mesh_shrink;
          repartition =
            (fun mesh' ->
              match jit mesh' with
              | (r : Schedule.result) -> Some r.Schedule.program
              | exception _ -> None);
        }
      ~steps:4 ~plan profile hw p0
  in
  Alcotest.(check int) (name ^ ": shrink completes all steps") 4 m2.Faults.steps;
  Alcotest.(check int)
    (name ^ ": mesh halved")
    (Mesh.num_devices mesh / 2)
    m2.Faults.final_devices;
  Alcotest.(check int) (name ^ ": shrink recovers once") 1 m2.Faults.recoveries;
  Alcotest.(check bool)
    (name ^ ": shrink goodput < 1") true (m2.Faults.goodput < 1.);
  let shrunk = Spmd_interp.run p_shrunk args in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: shrink result %d matches reference (delta %g)"
           name i (Literal.max_abs_diff a b))
        true
        (Literal.max_abs_diff a b < 1e-3))
    (List.combine reference shrunk)

let test_recovery_t32 () =
  check_recovery "T32" t32_jit (t32_mesh ()) (Lazy.force t32_step).Train.func

let test_recovery_unet () =
  check_recovery "UNet" unet_jit (unet_mesh ())
    (Lazy.force unet_step).Train.func

let test_drop_metrics () =
  let r = t32_jit (t32_mesh ()) in
  let plan =
    {
      Faults.seed = 9;
      faults = [ Faults.Drop_collective { step = 0; collective = 1; failures = 3 } ];
    }
  in
  let m, _ = Faults.run_steps ~steps:3 ~plan profile hw r.Schedule.program in
  Alcotest.(check int) "all steps complete" 3 m.Faults.steps;
  Alcotest.(check int) "no recoveries" 0 m.Faults.recoveries;
  Alcotest.(check int) "three retries" 3 m.Faults.retries;
  (* timeout 5ms, backoff 2: 5 + 10 + 20. *)
  Alcotest.(check (float 1e-9)) "backoff wait" 35. m.Faults.retry_wait_ms

let test_mtbf_plan_deterministic () =
  let mesh = t32_mesh () in
  let a = Faults.plan_of_mtbf ~seed:4 ~mtbf_steps:2. ~steps:32 mesh in
  let b = Faults.plan_of_mtbf ~seed:4 ~mtbf_steps:2. ~steps:32 mesh in
  Alcotest.(check bool) "same plan for same seed" true (a = b);
  Alcotest.(check bool)
    "~steps/mtbf crashes" true
    (List.length a.Faults.faults > 0);
  let c = Faults.plan_of_mtbf ~seed:5 ~mtbf_steps:2. ~steps:32 mesh in
  Alcotest.(check bool) "different seed, different plan" true (a <> c)

(* ---------------- divisibility validator ---------------- *)

let test_tile_rejects_indivisible () =
  let b = Builder.create "f" in
  let x = Builder.param b "x" [| 6; 4 |] Dtype.F32 in
  let w = Builder.param b "w" [| 4; 4 |] Dtype.F32 in
  let f = Builder.finish b [ Builder.matmul b x w ] in
  let staged = Staged.of_func (Mesh.create [ ("a", 4) ]) f in
  let xv = List.hd staged.Staged.params in
  match Staged.tile staged ~value:xv ~dim:0 ~axis:"a" with
  | _ -> Alcotest.fail "tile of 6 by axis of size 4 must be rejected"
  | exception Staged.Action_error msg ->
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "error mentions %S" needle)
            true
            (contains ~needle msg))
        [ "dim 0"; "\"a\""; "size 6" ]

let test_validate_catches_corrupt_nest () =
  (* Bypass the tile action and corrupt a nest directly: validate (called
     by Lower.lower and Temporal.run_general) must reject it before the
     truncating slice arithmetic runs. *)
  let make () =
    let b = Builder.create "f" in
    let x = Builder.param b "x" [| 6; 4 |] Dtype.F32 in
    let w = Builder.param b "w" [| 4; 4 |] Dtype.F32 in
    let f = Builder.finish b [ Builder.matmul b x w ] in
    let staged = Staged.of_func (Mesh.create [ ("a", 4) ]) f in
    let sop = List.hd staged.Staged.body in
    sop.Staged.nest <-
      [
        {
          Action.axis = "a";
          operand_dims = [| Some 0; None |];
          result_actions = [| Action.Tile 0 |];
        };
      ];
    staged
  in
  let expect_error what f =
    match f () with
    | _ -> Alcotest.failf "%s must reject the corrupt nest" what
    | exception Staged.Action_error msg ->
        Alcotest.(check bool)
          (what ^ ": structured message") true
          (contains ~needle:"dim 0" msg && contains ~needle:"\"a\"" msg)
  in
  expect_error "validate" (fun () -> Staged.validate (make ()));
  expect_error "Lower.lower" (fun () -> Lower.lower (make ()));
  expect_error "Temporal.run" (fun () ->
      let staged = make () in
      let args = random_args 2 (Staged.to_func staged) in
      Temporal.run staged args)

let test_validate_accepts_legal () =
  let r = t32_jit (t32_mesh ()) in
  ignore r;
  (* jit already lowers (and therefore validates); reaching here means the
     validator accepts every nest propagation produced. *)
  ()

let () =
  Alcotest.run "faults"
    [
      ( "engine",
        [
          Alcotest.test_case "fault-free parity with the measured walk" `Quick
            test_parity;
          Alcotest.test_case "straggler slows the mesh via barriers" `Quick
            test_straggler;
          Alcotest.test_case "degraded link raises comm time" `Quick
            test_link_degrade;
          Alcotest.test_case "crash detected at the next barrier" `Quick
            test_crash_detection;
          Alcotest.test_case "retry/backoff accounting is exact" `Quick
            test_retry_accounting;
          Alcotest.test_case "decorrelated jitter is seed-reproducible" `Quick
            test_retry_jitter;
        ] );
      ( "mesh-shrink",
        [
          Alcotest.test_case "shrink_mesh halves the largest even axis"
            `Quick test_shrink_mesh;
          Alcotest.test_case "re-lowering on the shrunk mesh is equivalent"
            `Quick test_shrink_relowering;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "T32: crash + both policies converge" `Slow
            test_recovery_t32;
          Alcotest.test_case "UNet: crash + both policies converge" `Slow
            test_recovery_unet;
          Alcotest.test_case "dropped collective: retries in metrics" `Quick
            test_drop_metrics;
          Alcotest.test_case "MTBF plans are seed-deterministic" `Quick
            test_mtbf_plan_deterministic;
        ] );
      ( "validator",
        [
          Alcotest.test_case "tile rejects indivisible dims" `Quick
            test_tile_rejects_indivisible;
          Alcotest.test_case "corrupt nests rejected before lowering" `Quick
            test_validate_catches_corrupt_nest;
          Alcotest.test_case "legal schedules pass validation" `Quick
            test_validate_accepts_legal;
        ] );
    ]
