(* Tests for MemCheck, the static per-device peak-memory pass: each
   planted defect must be reported with its exact MC code; the benchmark
   models at paper-scale hardware must produce zero memory diagnostics
   (no false positives); and on partcheck-generated cases the static
   arena bound must dominate the measured live-slot peak of the compiled
   plan, before and after fusion. *)

open Partir
module Gen = Partir_check.Gen
module Oracle = Partir_check.Oracle
module Zoo = Serve.Zoo

let ty shape dtype = Value.ttype shape dtype
let f32 shape = ty shape Dtype.F32

let codes diags = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) diags

let check_has_code what code diags =
  if not (Diagnostic.has_code code diags) then
    Alcotest.failf "%s: expected %s among [%s]" what code
      (String.concat "; " (codes diags))

let check_no_mem_diags what diags =
  match
    List.filter
      (fun (d : Diagnostic.t) ->
        String.length d.Diagnostic.code >= 2
        && String.sub d.Diagnostic.code 0 2 = "MC")
      diags
  with
  | [] -> ()
  | mc ->
      Alcotest.failf "%s: expected zero memory diagnostics, got:\n%s" what
        (Diagnostic.list_to_string mc)

let program_of ~mesh ~params ~input_layouts ~body ~results ~output_layouts =
  {
    Lower.mesh;
    func = { Func.name = "m_spmd"; params; body; results };
    source_params = params;
    source_results = results;
    input_layouts;
    output_layouts;
    source_flops = 0.;
  }

(* Toy hardware: 0.048 GB HBM = 4.8e7 bytes capacity. *)
let toy = Hardware.toy

(* {1 Planted defects} *)

(* A 4000x4000 f32 parameter is 6.4e7 B — larger than the whole toy HBM:
   MC002 (error) on the parameter, MC001 (error) on the peak. *)
let test_oversized_param () =
  let mesh = Mesh.create [ ("d", 1) ] in
  let x = Value.fresh ~name:"w" (f32 [| 4000; 4000 |]) in
  let op = Op.make (Op.Binary Op.Add) [ x; x ] () in
  let p =
    program_of ~mesh ~params:[ x ]
      ~input_layouts:[ [| []; [] |] ]
      ~body:[ op ] ~results:op.Op.results
      ~output_layouts:[ [| []; [] |] ]
  in
  let diags = Mem_check.program ~hardware:toy p in
  check_has_code "oversized parameter" "MC002" diags;
  check_has_code "peak over capacity" "MC001" diags;
  if Diagnostic.errors diags = [] then
    Alcotest.fail "oversized parameter must be an error, not a warning"

(* A 1800x1800 f32 parameter (1.3e7 B) fits, but replicating it across a
   2-device mesh wastes >25% of each device's HBM: MC002 as a warning
   only — no errors. *)
let test_replicated_param_warning () =
  let mesh = Mesh.create [ ("d", 2) ] in
  let x = Value.fresh ~name:"w" (f32 [| 1800; 1800 |]) in
  let op = Op.make (Op.Binary Op.Add) [ x; x ] () in
  let p =
    program_of ~mesh ~params:[ x ]
      ~input_layouts:[ [| []; [] |] ]
      ~body:[ op ] ~results:op.Op.results
      ~output_layouts:[ [| []; [] |] ]
  in
  let diags = Mem_check.program ~hardware:toy p in
  check_has_code "replicated parameter" "MC002" diags;
  (match Diagnostic.errors diags with
  | [] -> ()
  | errs ->
      Alcotest.failf "replication waste must only warn, got errors:\n%s"
        (Diagnostic.list_to_string errs));
  (* The same program on a single-device mesh has nowhere to shard to —
     no MC002. *)
  let mesh1 = Mesh.create [ ("d", 1) ] in
  let p1 = { p with Lower.mesh = mesh1 } in
  check_no_mem_diags "single device" (Mem_check.program ~hardware:toy p1)

(* A For whose carry is 2.5e7 B: with the iter/carry slots and staging
   copies the loop alone needs ~5e7 B > 4.8e7 B capacity: MC004 error. *)
let test_oom_loop_carry () =
  let b = Builder.create "loopy" in
  let x = Builder.param b "x" [| 2500; 2500 |] Dtype.F32 in
  let iter = Value.fresh ~name:"i" (ty Shape.scalar Dtype.I32) in
  let carry = Value.fresh ~name:"acc" (f32 [| 2500; 2500 |]) in
  let rb = Builder.create "body" in
  let acc' = Builder.add2 rb carry carry in
  let region = { Op.params = [ iter; carry ]; body = Builder.ops rb; yields = [ acc' ] } in
  let results =
    Builder.add_multi b (Op.For { trip_count = 2; n_carries = 1 }) [ x ] ~region ()
  in
  let f = Builder.finish b [ List.hd results ] in
  let mesh = Mesh.create [ ("d", 1) ] in
  let p =
    program_of ~mesh ~params:f.Func.params
      ~input_layouts:[ [| []; [] |] ]
      ~body:f.Func.body ~results:f.Func.results
      ~output_layouts:[ [| []; [] |] ]
  in
  let diags = Mem_check.program ~hardware:toy p in
  check_has_code "OOM loop carry" "MC004" diags;
  check_has_code "loop drives peak over capacity" "MC001" diags

(* An all_gather over d:2 doubles a 2.5e7 B shard into a 5e7 B staging
   buffer — larger than the toy HBM: MC003 error. *)
let test_staging_blowup () =
  let mesh = Mesh.create [ ("d", 2) ] in
  let x = Value.fresh ~name:"x" (f32 [| 2500; 2500 |]) in
  let op =
    Op.make (Op.All_gather { dim_axes = [| [ ("d", 2) ]; [] |] }) [ x ] ()
  in
  let p =
    program_of ~mesh ~params:[ x ]
      ~input_layouts:[ [| [ "d" ]; [] |] ]
      ~body:[ op ] ~results:op.Op.results
      ~output_layouts:[ [| []; [] |] ]
  in
  let diags = Mem_check.program ~hardware:toy p in
  check_has_code "staging blowup" "MC003" diags;
  if Diagnostic.errors diags = [] then
    Alcotest.fail "over-capacity staging must be an error";
  (* A smaller gather (1.35e7 B result, 28% of HBM) only warns. *)
  let y = Value.fresh ~name:"y" (f32 [| 1300; 1300 |]) in
  let op2 =
    Op.make (Op.All_gather { dim_axes = [| [ ("d", 2) ]; [] |] }) [ y ] ()
  in
  let p2 =
    program_of ~mesh ~params:[ y ]
      ~input_layouts:[ [| [ "d" ]; [] |] ]
      ~body:[ op2 ] ~results:op2.Op.results
      ~output_layouts:[ [| []; [] |] ]
  in
  let diags2 = Mem_check.program ~hardware:toy p2 in
  check_has_code "large staging fraction" "MC003" diags2;
  match Diagnostic.errors diags2 with
  | [] -> ()
  | errs ->
      Alcotest.failf "28%% staging must only warn, got errors:\n%s"
        (Diagnostic.list_to_string errs)

(* {1 Hardware spec validation} *)

let test_hardware_validate () =
  let expect_invalid what f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
    | exception Invalid_argument msg ->
        if not (String.length msg > 0) then
          Alcotest.failf "%s: empty validation message" what
  in
  let mk ?(hbm_gb = 16.) ?(mem_bw_gbps = 900.) ?(link_gbps = [| 70. |])
      ?(compute_efficiency = 0.6) () =
    Hardware.make ~name:"bad" ~peak_tflops:100. ~hbm_gb ~mem_bw_gbps
      ~link_gbps ~link_latency_us:2. ~compute_efficiency
  in
  expect_invalid "zero HBM" (fun () -> mk ~hbm_gb:0. ());
  expect_invalid "negative HBM" (fun () -> mk ~hbm_gb:(-4.) ());
  expect_invalid "NaN bandwidth" (fun () -> mk ~mem_bw_gbps:Float.nan ());
  expect_invalid "empty links" (fun () -> mk ~link_gbps:[||] ());
  expect_invalid "non-positive link" (fun () -> mk ~link_gbps:[| 70.; 0. |] ());
  expect_invalid "efficiency > 1" (fun () -> mk ~compute_efficiency:1.5 ());
  (* The shipped registry must validate against its own rules. *)
  List.iter (fun h -> ignore (Hardware.validate h)) Hardware.registry

(* {1 No false positives on the benchmark models} *)

(* The CI benchmark matrix: every model/schedule pair must analyze with
   zero MC diagnostics at paper-scale (tpu_v3, 16 GB HBM) — the small
   variants are all well under capacity, so anything MemCheck reports
   here is a false positive. *)
let benchmark_matrix =
  [
    ("t32-small", "bp,mp,z3", "batch=4,model=2");
    ("it32-small", "bp,mq", "batch=2,model=2");
    ("unet-small", "bp,z2", "batch=2,model=2");
    ("gns-small", "bp,es", "batch=4,model=2");
    ("mlp", "bp,z3", "batch=4,model=2");
  ]

let test_benchmark_models_clean () =
  let hardware = Hardware.tpu_v3 in
  List.iter
    (fun (model, schedule, mesh_spec) ->
      let prepared = Zoo.prepare model in
      let mesh = Zoo.parse_mesh mesh_spec in
      let tactics = Zoo.tactics_of prepared hardware 32 schedule in
      let r = jit ~ties:prepared.Zoo.ties mesh prepared.Zoo.func tactics in
      let report = Mem_check.analyze ~hardware r.Schedule.program in
      check_no_mem_diags
        (Printf.sprintf "%s %s" model schedule)
        report.Mem_check.diags;
      if not (report.Mem_check.peak_bytes <= Hardware.hbm_bytes hardware) then
        Alcotest.failf "%s %s: peak %.0f B over tpu_v3 HBM" model schedule
          report.Mem_check.peak_bytes;
      if not (report.Mem_check.peak_bytes > 0.) then
        Alcotest.failf "%s %s: vacuous zero peak" model schedule)
    benchmark_matrix

(* {1 Property: static arena bound dominates the measured plan peak} *)

(* On >= 100 partcheck-generated cases (random programs, meshes and
   schedules): the 8 B/element arena bound from the static walk must be
   an upper bound on the live-slot peak the plan executor actually
   reaches, and fusion must never increase that bound (monotonicity is
   asserted in the discount-free arena currency — the HBM bound's
   elementwise-fusion discount shifts with use counts under collective
   fusion). No numeric execution — just lower, analyze, compile. *)
let test_bound_dominates_arena () =
  for seed = 0 to 119 do
    let c = Gen.generate ~seed in
    let func, mesh, pool = Gen.build c in
    let staged = Staged.of_func mesh func in
    let _applied, _skipped = Oracle.apply_schedule c staged pool in
    let p0 = Lower.lower ~fuse:false staged in
    let p1 = { p0 with Lower.func = Fusion.run p0.Lower.func } in
    let r0 = Mem_check.analyze p0 and r1 = Mem_check.analyze p1 in
    List.iter
      (fun (what, (r : Mem_check.report), p) ->
        let measured = Plan.Spmd.peak_bytes (Plan.Spmd.compile p) in
        if r.Mem_check.arena_bound_bytes +. 0.5 < float_of_int measured then
          Alcotest.failf "seed %d %s: static arena bound %.0f B < measured %d B"
            seed what r.Mem_check.arena_bound_bytes measured)
      [ ("unfused", r0, p0); ("fused", r1, p1) ];
    if
      r1.Mem_check.arena_bound_bytes
      > r0.Mem_check.arena_bound_bytes *. (1. +. 1e-9)
    then
      Alcotest.failf "seed %d: fusion raised static arena bound %.0f -> %.0f B"
        seed r0.Mem_check.arena_bound_bytes r1.Mem_check.arena_bound_bytes
  done

let () =
  Alcotest.run "mem"
    [
      ( "memcheck-planted",
        [
          Alcotest.test_case "oversized parameter" `Quick test_oversized_param;
          Alcotest.test_case "replicated parameter" `Quick
            test_replicated_param_warning;
          Alcotest.test_case "OOM loop carry" `Quick test_oom_loop_carry;
          Alcotest.test_case "staging blowup" `Quick test_staging_blowup;
        ] );
      ( "hardware",
        [ Alcotest.test_case "spec validation" `Quick test_hardware_validate ] );
      ( "memcheck-models",
        [
          Alcotest.test_case "benchmark matrix clean" `Quick
            test_benchmark_models_clean;
        ] );
      ( "memcheck-property",
        [
          Alcotest.test_case "bound vs arena (120 cases)" `Quick
            test_bound_dominates_arena;
        ] );
    ]
