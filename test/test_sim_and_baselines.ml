(* Tests for the simulator stack, the GSPMD baseline, the automatic
   partitioner, and collective fusion. *)

open Partir_tensor
open Partir_hlo
open Partir_core
module Mesh = Partir_mesh.Mesh
module Layout = Partir_spmd.Layout
module Lower = Partir_spmd.Lower
module Census = Partir_spmd.Census
module Fusion = Partir_spmd.Fusion
module Hardware = Partir_sim.Hardware
module Cost_model = Partir_sim.Cost_model
module Schedule = Partir_schedule.Schedule
module Strategies = Partir_strategies.Strategies
module Auto = Partir_auto.Auto
module Gspmd = Partir_gspmd.Gspmd
module Mlp = Partir_models.Mlp
module Train = Partir_models.Train

let mlp_step = lazy (Train.training_step (Mlp.forward Mlp.default))

let jit_mlp mesh schedule =
  let step = Lazy.force mlp_step in
  Schedule.jit ~ties:step.Train.ties mesh step.Train.func schedule

let bp () = Strategies.bp ~axis:"batch" ~inputs:[ "x"; "target" ] ()

let sim_tests =
  [
    Alcotest.test_case "BP reduces per-device flops" `Quick (fun () ->
        let r1 = jit_mlp (Mesh.create [ ("batch", 2) ]) [ bp () ] in
        let r2 = jit_mlp (Mesh.create [ ("batch", 8) ]) [ bp () ] in
        let hw = Hardware.tpu_v3 in
        let e1 = Cost_model.run Cost_model.analytic hw r1.Schedule.program in
        let e2 = Cost_model.run Cost_model.analytic hw r2.Schedule.program in
        (* Matmul flops scale with the batch shards; the optimizer update
           (parameter-sized, replicated) does not, so the ratio sits
           between 2x and the ideal 4x. *)
        Alcotest.(check bool)
          "flops scale down" true
          (e1.Cost_model.flops_per_device /. e2.Cost_model.flops_per_device > 2.5));
    Alcotest.test_case "Z3 reduces resident memory vs BP" `Quick (fun () ->
        let mesh = Mesh.create [ ("batch", 8) ] in
        let rbp = jit_mlp mesh [ bp () ] in
        let rz3 =
          jit_mlp mesh
            [ bp (); Strategies.zero ~level:`Z3 ~axis:"batch" ~shard:(fun n -> Filename.check_suffix n "w1" || Filename.check_suffix n "w0" || Filename.check_suffix n "w2") ]
        in
        let hw = Hardware.tpu_v3 in
        let m s = (Cost_model.run Cost_model.analytic hw s.Schedule.program).Cost_model.peak_memory_mb in
        Alcotest.(check bool) "z3 memory below bp" true (m rz3 < m rbp));
    Alcotest.test_case "analytic overestimates memory vs measured" `Quick
      (fun () ->
        let mesh = Mesh.create [ ("batch", 4) ] in
        let r = jit_mlp mesh [ bp () ] in
        let hw = Hardware.tpu_v3 in
        let a = Cost_model.run Cost_model.analytic hw r.Schedule.program in
        let m = Cost_model.run Cost_model.measured hw r.Schedule.program in
        Alcotest.(check bool) "a >= m" true
          (a.Cost_model.peak_memory_mb >= m.Cost_model.peak_memory_mb));
    Alcotest.test_case "census weights For bodies by trip count" `Quick
      (fun () ->
        let cfg = { Partir_models.Transformer.tiny with layers = 1; batch = 4; heads = 2 } in
        let f = Partir_models.Transformer.inference cfg ~decode_steps:5 in
        let mesh = Mesh.create [ ("batch", 2); ("model", 2) ] in
        let r =
          Schedule.jit mesh f
            [
              Strategies.it32_bp ~axis:"batch" ~layers:1;
              Strategies.transformer_mp ~axis:"model";
            ]
        in
        let c = Census.of_program r.Schedule.program in
        Alcotest.(check int) "2 AR/layer/step" 10 c.Census.all_reduce);
    Alcotest.test_case "mock backend compiles" `Quick (fun () ->
        let mesh = Mesh.create [ ("batch", 2) ] in
        let r = jit_mlp mesh [ bp () ] in
        Alcotest.(check bool) "positive time" true
          (Partir_sim.Backend.compile r.Schedule.program > 0.));
  ]

let gspmd_tests =
  [
    Alcotest.test_case "expert annotations reproduce the PartIR census" `Quick
      (fun () ->
        let mesh = Mesh.create [ ("batch", 4) ] in
        let r = jit_mlp mesh [ bp () ] in
        let annos =
          List.concat_map
            (fun (name, layout) ->
              List.concat
                (List.mapi
                   (fun dim axes ->
                     List.map (fun axis -> { Gspmd.name; dim; axis }) axes)
                   (Array.to_list layout)))
            r.Schedule.input_shardings
        in
        let step = Lazy.force mlp_step in
        let gp, _ =
          Gspmd.partition ~variant:`Expert ~ties:step.Train.ties mesh
            step.Train.func annos
        in
        Alcotest.(check bool)
          "same collective counts" true
          (Census.of_program gp = Census.of_program r.Schedule.program));
    Alcotest.test_case "conflicts are resolved, not blocked" `Quick (fun () ->
        (* The paper's conflicting double-annotation (x batch-wise AND w
           output-wise on the same axis, amalgamated): GSPMD picks a rule
           and produces a working program. *)
        let b = Builder.create "g" in
        let x = Builder.param b "x" [| 8; 4 |] Dtype.F32 in
        let w = Builder.param b "w" [| 4; 8 |] Dtype.F32 in
        let f = Builder.finish b [ Builder.matmul b x w ] in
        let mesh = Mesh.create [ ("a", 2) ] in
        let program, conflicts =
          Gspmd.partition ~variant:`No_internal mesh f
            [
              { Gspmd.name = "x"; dim = 0; axis = "a" };
              { Gspmd.name = "w"; dim = 1; axis = "a" };
            ]
        in
        Alcotest.(check bool) "reported" true (List.length conflicts > 0);
        (* And the partitioned program still computes the right thing. *)
        let st = Random.State.make [| 2 |] in
        let args =
          List.map
            (fun (p : Value.t) ->
              Literal.init p.Value.ty.Value.dtype p.Value.ty.Value.shape
                (fun _ -> Random.State.float st 1.))
            f.Func.params
        in
        let reference = Interp.run f args in
        let spmd = Partir_spmd.Spmd_interp.run program args in
        List.iter2
          (fun a b ->
            Alcotest.(check bool) "equal" true (Literal.max_abs_diff a b < 1e-4))
          reference spmd);
  ]

let auto_tests =
  [
    Alcotest.test_case "over-limit schedules are hard-rejected" `Quick
      (fun () ->
        let step = Lazy.force mlp_step in
        let mesh = Mesh.create [ ("batch", 4) ] in
        let staged = Staged.of_func mesh step.Train.func in
        let opts = Auto.default_options in
        let plain = Auto.evaluate opts staged in
        Alcotest.(check bool) "feasible on default HBM" true
          (Float.is_finite plain && plain > 0.);
        match
          Auto.evaluate { opts with memory_limit_bytes = Some 1. } staged
        with
        | _ -> Alcotest.fail "expected Infeasible_oom on a 1-byte limit"
        | exception Auto.Infeasible_oom { peak_bytes; limit_bytes } ->
            Alcotest.(check bool) "peak above limit" true
              (peak_bytes > limit_bytes));
    Alcotest.test_case "greedy beats or matches no partitioning" `Quick
      (fun () ->
        let step = Lazy.force mlp_step in
        let mesh = Mesh.create [ ("batch", 4) ] in
        let baseline = Staged.of_func mesh step.Train.func in
        let opts = { Auto.default_options with budget = 16; max_positions = 4 } in
        let base_cost = Auto.evaluate opts baseline in
        let r =
          Schedule.jit ~ties:step.Train.ties mesh step.Train.func
            [ Auto.greedy ~axes:[ "batch" ] opts ]
        in
        let est =
          Cost_model.run Cost_model.analytic opts.Auto.hardware
            r.Schedule.program
        in
        Alcotest.(check bool) "improved or equal" true
          (est.Cost_model.runtime_ms <= base_cost +. 1e-9));
  ]

let fusion_tests =
  [
    Alcotest.test_case "add of matching all_reduces fuses" `Quick (fun () ->
        let ty = Value.ttype [| 4; 4 |] Dtype.F32 in
        let a = Value.fresh ~name:"a" ty and b = Value.fresh ~name:"b" ty in
        let ar k = Op.make (Op.All_reduce { axes = [ ("x", 2) ]; reduce = Op.Rsum }) [ k ] () in
        let ar1 = ar a and ar2 = ar b in
        let add =
          Op.make (Op.Binary Op.Add)
            [ List.hd ar1.Op.results; List.hd ar2.Op.results ]
            ()
        in
        let f =
          {
            Func.name = "f";
            params = [ a; b ];
            body = [ ar1; ar2; add ];
            results = add.Op.results;
          }
        in
        let fused = Fusion.run f in
        let c = Census.of_func fused in
        Alcotest.(check int) "one all_reduce" 1 c.Census.all_reduce);
    Alcotest.test_case "slice of gather cancels" `Quick (fun () ->
        let ty = Value.ttype [| 4; 4 |] Dtype.F32 in
        let a = Value.fresh ~name:"a" ty in
        let g =
          Op.make (Op.All_gather { dim_axes = [| [ ("x", 2) ]; [] |] }) [ a ] ()
        in
        let s =
          Op.make
            (Op.All_slice { dim_axes = [| [ ("x", 2) ]; [] |] })
            [ List.hd g.Op.results ]
            ()
        in
        let neg = Op.make (Op.Unary Op.Neg) [ List.hd s.Op.results ] () in
        let f =
          {
            Func.name = "f";
            params = [ a ];
            body = [ g; s; neg ];
            results = neg.Op.results;
          }
        in
        let fused = Fusion.run f in
        let c = Census.of_func fused in
        Alcotest.(check int) "no gathers" 0 c.Census.all_gather;
        Alcotest.(check int) "no slices" 0 c.Census.all_slice);
  ]

let layout_tests =
  [
    Alcotest.test_case "local shapes and offsets tile the tensor" `Quick
      (fun () ->
        let mesh = Mesh.create [ ("x", 2); ("y", 2) ] in
        let layout = Layout.of_dim_axes ~rank:2 [ (0, "x"); (0, "y") ] in
        let shape = [| 8; 3 |] in
        Alcotest.(check bool) "local 2x3" true
          (Shape.equal (Layout.local_shape mesh shape layout) [| 2; 3 |]);
        (* Distinct devices own distinct offsets covering the dim. *)
        let offsets =
          List.map
            (fun d -> (Layout.chunk_offsets mesh shape layout d).(0))
            (Mesh.devices mesh)
        in
        Alcotest.(check bool) "offsets cover" true
          (List.sort compare offsets = [ 0; 2; 4; 6 ]));
  ]

let () =
  Alcotest.run "sim-and-baselines"
    [
      ("sim", sim_tests);
      ("gspmd", gspmd_tests);
      ("auto", auto_tests);
      ("fusion", fusion_tests);
      ("layout", layout_tests);
    ]
